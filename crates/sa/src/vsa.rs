//! Value-set analysis: strided-interval abstract interpretation over the
//! recovered CFG.
//!
//! Tracks, per general register, a [`StridedInterval`] of possible values
//! plus a *taint depth*: `None` means provably input-independent,
//! `Some(d)` means the value may derive from program input through `d`
//! levels of tainted-address memory indirection. Taint sources are loads
//! from the argv block and returns of environment syscalls (`time`,
//! `net_get`, `getuid`, `read`, …). This mirrors the dynamic engine's
//! `max_indirection` / `sym_jump` ground-truth measures, which is what
//! lets static predictions line up with dynamic outcomes.
//!
//! ## Soundness model
//!
//! * All interval arithmetic widens to ⊤ rather than wrap.
//! * Loads from static data are only replaced by their concrete contents
//!   when (a) the address set is small and finite, (b) it lies entirely
//!   inside static segments, and (c) a previous *collect* round proved no
//!   store and no memory-writing syscall can touch those addresses.
//! * An unresolved indirect **call** poisons the store cover (it could
//!   reach any code). Unresolved indirect **jumps** are assumed to stay
//!   inside the enclosing function; code not yet recovered by descent is
//!   linearly swept, and any store found there poisons the cover too.
//! * Branch edges are marked infeasible only when *every* analyzed
//!   calling context proves the comparison one-sided.

use crate::cfg::Cfg;
use crate::code::{CodeMap, Region};
use bomblab_interval::StridedInterval;
use bomblab_isa::image::layout;
use bomblab_isa::{sys, Insn, Opcode, Reg};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Taint depths are capped so fixpoints terminate.
const MAX_DEPTH: u8 = 8;
/// Block visits before switching from join to widen.
const WIDEN_AFTER: u32 = 8;
/// Largest address set a load or `jr` will enumerate.
const MAX_ENUM: u64 = 256;

/// Taint source: program arguments (the paper tools' only symbolic
/// source).
pub const SRC_ARGV: u8 = 1;
/// Taint source: environment / kernel state (time, uid, file positions,
/// net responses, scheduling) — symbolic only under simulation.
pub const SRC_ENV: u8 = 2;
/// Taint source: file descriptors returned by `open`. Tracked separately
/// so branches comparing an fd against −1 (error checks) are
/// distinguishable from genuine environment branches.
pub const SRC_FD: u8 = 4;

/// A taint mark: indirection depth plus the union of its sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mark {
    /// Levels of tainted-address memory indirection behind this value.
    pub depth: u8,
    /// Bitmask of `SRC_*` origins.
    pub src: u8,
}

/// Taint lattice: `None` ⊑ `Some(Mark)`; join is max-depth, union-src.
type Taint = Option<Mark>;

fn mark(depth: u8, src: u8) -> Taint {
    Some(Mark {
        depth: depth.min(MAX_DEPTH),
        src,
    })
}

fn taint_join(a: Taint, b: Taint) -> Taint {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(x), Some(y)) => Some(Mark {
            depth: x.depth.max(y.depth).min(MAX_DEPTH),
            src: x.src | y.src,
        }),
    }
}

/// An abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AVal {
    si: StridedInterval,
    taint: Taint,
}

impl AVal {
    fn top() -> AVal {
        AVal {
            si: StridedInterval::top(),
            taint: None,
        }
    }
    fn point(v: u64) -> AVal {
        AVal {
            si: StridedInterval::point(v),
            taint: None,
        }
    }
}

/// Abstract machine state at a block boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    regs: [AVal; 32],
    fregs: [Taint; 16],
}

impl State {
    fn top() -> State {
        State {
            regs: [AVal::top(); 32],
            fregs: [None; 16],
        }
    }

    fn get(&self, r: Reg) -> AVal {
        if r == Reg::ZERO {
            AVal::point(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: AVal) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn join_from(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let old = self.regs[i];
            let si = if widen {
                old.si.widen(&other.regs[i].si)
            } else {
                old.si.join(&other.regs[i].si)
            };
            let new = AVal {
                si,
                taint: taint_join(old.taint, other.regs[i].taint),
            };
            if new != old {
                self.regs[i] = new;
                changed = true;
            }
        }
        for i in 0..16 {
            let t = taint_join(self.fregs[i], other.fregs[i]);
            if t != self.fregs[i] {
                self.fregs[i] = t;
                changed = true;
            }
        }
        changed
    }
}

/// Taint signature of a call context: marks of `a0..a5` and `sv`,
/// plus whether this is the program entry context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Sig {
    args: [Taint; 7],
    entry: bool,
}

impl Sig {
    fn all_tainted() -> Sig {
        Sig {
            args: [mark(0, SRC_ARGV); 7],
            entry: false,
        }
    }
    /// The most conservative return taint implied by the arguments alone.
    fn worst(&self) -> Taint {
        self.args.iter().fold(None, |acc, &t| taint_join(acc, t))
    }
}

/// Store cover from a collect round: address intervals that may be
/// written at run time.
#[derive(Debug, Clone, Default)]
pub struct Cover {
    intervals: Vec<(u64, u64)>,
    /// Some write's target could not be bounded.
    pub unknown: bool,
}

impl Cover {
    fn add(&mut self, lo: u64, hi: u64) {
        self.intervals.push((lo, hi));
    }
    fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.unknown || self.intervals.iter().any(|&(a, b)| lo <= b && a <= hi)
    }
    /// Whether `self` stayed within what `prior` already covered.
    #[must_use]
    pub fn within(&self, prior: &Cover) -> bool {
        if prior.unknown {
            return true;
        }
        if self.unknown {
            return false;
        }
        self.intervals.iter().all(|&(a, b)| {
            // Split-free check: every written interval must fit inside one
            // prior interval (stores here are small and non-adjacent).
            prior.intervals.iter().any(|&(pa, pb)| pa <= a && b <= pb)
        })
    }
}

/// One `sys` site as seen by the analysis.
#[derive(Debug, Clone, Default)]
pub struct SysSite {
    /// Resolved syscall numbers (empty = unknown).
    pub nums: Vec<u64>,
    /// `sv` is a single known constant.
    pub sv_point: bool,
    /// `sv` may derive from input (contextual syscall number).
    pub sv_tainted: bool,
    /// Taint of `a0`/`a1` at the call.
    pub a0_taint: bool,
    /// Taint depth of `a1` (buffer/argument pointer), if any.
    pub a1_taint: bool,
}

/// Facts produced by a run of the analysis.
#[derive(Debug, Clone, Default)]
pub struct VsaOut {
    /// `jr` site → (targets, taint of the jump value). Empty target
    /// set means unresolved.
    pub jr: BTreeMap<u64, (BTreeSet<u64>, Option<Mark>)>,
    /// All conditional-branch sites seen.
    pub branch_sites: BTreeSet<u64>,
    /// `(branch pc, taken)` edges observed feasible in some context.
    pub feasible: BTreeSet<(u64, bool)>,
    /// `sys` sites.
    pub sys_sites: BTreeMap<u64, SysSite>,
    /// Deepest tainted-address load chain anywhere.
    pub max_load_depth: u8,
    /// Deepest tainted-address load chain in executable (non-library) text.
    pub max_load_depth_exe: u8,
    /// Sites of loads with tainted addresses, with their depth.
    pub tainted_loads: BTreeMap<u64, u8>,
    /// A `push` of a tainted value exists.
    pub tainted_push: bool,
    /// Input reaches floating-point computation.
    pub fp_tainted: bool,
    /// Division sites whose divisor may be zero and derives from input.
    pub tainted_div: BTreeSet<u64>,
    /// Union of `SRC_*` bits over all tainted conditional branches.
    pub branch_src: u8,
    /// A branch compares an `open` return value against −1: the program
    /// checks for open failure before using the file.
    pub open_error_branch: bool,
    /// Indirect calls with no static callee set.
    pub callr_unresolved: BTreeSet<u64>,
    /// Names of directly called functions (post import resolution).
    pub called: BTreeSet<String>,
    /// Library functions called with at least one tainted argument.
    pub tainted_lib_calls: BTreeSet<String>,
    /// Code addresses passed to `sys` as trap handlers / thread entries.
    pub extra_roots: BTreeMap<u64, String>,
    /// The program loads argv bytes (has a symbolic input source).
    pub loads_argv: bool,
    /// Conditional-branch sites (incl. float branches) whose condition
    /// operands carry taint, with the union of their `SRC_*` bits.
    pub branch_taint: BTreeMap<u64, u8>,
    /// Instructions that *define* a tainted value from outside the
    /// register file — loads of tainted cells, `sys` returns, tainted
    /// pops. These seed the def-use taint closure.
    pub tainted_defs: BTreeMap<u64, u8>,
    /// Stores into static data, pc -> written `(lo, hi)` byte range
    /// (bounded addresses only). Raw material for race detection.
    pub static_stores: BTreeMap<u64, (u64, u64)>,
    /// Loads from static data, pc -> read `(lo, hi)` byte range.
    pub static_loads: BTreeMap<u64, (u64, u64)>,
    /// `fork` syscall sites: code after one runs in both the parent and
    /// the child, so mutually unreachable post-fork arms are concurrent.
    pub fork_sites: BTreeSet<u64>,
}

impl VsaOut {
    /// Branch edges proved infeasible in every analyzed context.
    #[must_use]
    pub fn infeasible_edges(&self) -> BTreeSet<(u64, bool)> {
        let mut out = BTreeSet::new();
        for &pc in &self.branch_sites {
            for taken in [false, true] {
                if !self.feasible.contains(&(pc, taken)) {
                    out.insert((pc, taken));
                }
            }
        }
        out
    }
}

/// The analyzer. Run a *collect* pass first (no load resolution, builds
/// the store cover), then a *resolve* pass that consumes the cover.
pub struct Vsa<'a> {
    code: &'a CodeMap,
    cfg: &'a Cfg,
    entry: u64,
    resolve: bool,
    prior_cover: Cover,
    cover: Cover,
    region_taint: BTreeMap<Region, Mark>,
    memo: HashMap<(u64, Sig), Taint>,
    in_progress: HashSet<(u64, Sig)>,
    poisoned_jr: BTreeSet<u64>,
    tainted_roots: BTreeSet<u64>,
    depth_budget: u32,
    out: VsaOut,
}

/// Result of a full analysis run.
pub struct VsaRun {
    /// The facts.
    pub out: VsaOut,
    /// Store cover observed during this run.
    pub cover: Cover,
}

impl<'a> Vsa<'a> {
    /// Runs the analysis. `resolve` enables static-data load resolution
    /// against `prior_cover` (from an earlier collect run).
    #[must_use]
    pub fn run(
        code: &'a CodeMap,
        cfg: &'a Cfg,
        entry: u64,
        resolve: bool,
        prior_cover: Cover,
        tainted_roots: &BTreeSet<u64>,
    ) -> VsaRun {
        let mut vsa = Vsa {
            code,
            cfg,
            entry,
            resolve,
            prior_cover,
            cover: Cover::default(),
            region_taint: BTreeMap::new(),
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            poisoned_jr: BTreeSet::new(),
            tainted_roots: tainted_roots.clone(),
            depth_budget: 0,
            out: VsaOut::default(),
        };
        // Region taints and the cover grow monotonically; iterate the
        // whole-program analysis until they settle.
        let mut prev_key = (BTreeMap::new(), 0usize, false);
        for _ in 0..4 {
            vsa.memo.clear();
            vsa.in_progress.clear();
            vsa.poisoned_jr.clear();
            vsa.out = VsaOut::default();
            vsa.cover = Cover::default();
            vsa.depth_budget = 200_000;
            vsa.analyze_roots();
            let key = (
                vsa.region_taint.clone(),
                vsa.cover.intervals.len(),
                vsa.cover.unknown,
            );
            if key == prev_key {
                break;
            }
            prev_key = key;
        }
        vsa.sweep_orphans();
        if !vsa.out.callr_unresolved.is_empty() {
            vsa.cover.unknown = true;
        }
        VsaRun {
            out: vsa.out,
            cover: vsa.cover,
        }
    }

    fn analyze_roots(&mut self) {
        let entry_sig = Sig {
            args: [None; 7],
            entry: true,
        };
        self.analyze_fn(self.entry, entry_sig);
        // Trap handlers and thread entries run with input already in
        // flight: analyze them with fully tainted arguments.
        let roots: Vec<u64> = self
            .cfg
            .functions
            .keys()
            .copied()
            .filter(|r| *r != self.entry && self.tainted_roots.contains(r))
            .collect();
        for root in roots {
            self.analyze_fn(root, Sig::all_tainted());
        }
    }

    /// Linear sweep over text bytes not covered by any recovered block:
    /// code reachable only through unresolved indirect jumps. Any store
    /// or syscall found there conservatively poisons the cover.
    fn sweep_orphans(&mut self) {
        let unresolved_jr = self.out.jr.values().any(|(targets, _)| targets.is_empty());
        if !unresolved_jr {
            return;
        }
        let mut covered: Vec<(u64, u64)> =
            self.cfg.blocks.values().map(|b| (b.start, b.end)).collect();
        covered.sort_unstable();
        let mut pc = match covered.first() {
            Some(&(s, _)) => s,
            None => return,
        };
        let end = covered.iter().map(|&(_, e)| e).max().unwrap_or(pc);
        // Which syscall a bare `sys` in orphan code would make: tracked
        // from the nearest preceding `li sv, imm` in the same linear run.
        // Calls clobber `sv` (caller-saved), so they reset the tracking.
        let mut last_sv: Option<u64> = None;
        while pc < end {
            if let Some(&(bs, be)) = covered.iter().find(|&&(s, e)| s <= pc && pc < e) {
                let _ = bs;
                pc = be;
                last_sv = None;
                continue;
            }
            match self.code.text_at(pc).map(Insn::decode) {
                Some(Ok((insn, len))) => {
                    match insn {
                        Insn::Store { .. } | Insn::Push { .. } | Insn::FSt { .. } => {
                            self.cover.unknown = true;
                            return;
                        }
                        Insn::Li { rd, imm } if rd == Reg::SV => last_sv = Some(imm),
                        Insn::Call { .. } | Insn::Callr { .. } => last_sv = None,
                        Insn::Sys => {
                            // Only memory-writing syscalls (or an unknown
                            // number) poison the cover; an orphan exit or
                            // write stub is harmless.
                            let writes = !matches!(
                                last_sv,
                                Some(
                                    sys::EXIT
                                        | sys::WRITE
                                        | sys::CLOSE
                                        | sys::TIME
                                        | sys::GETPID
                                        | sys::GETUID
                                        | sys::THREAD_EXIT
                                )
                            );
                            if writes {
                                self.cover.unknown = true;
                                return;
                            }
                        }
                        _ => {}
                    }
                    pc += len as u64;
                }
                _ => {
                    pc += 1;
                    last_sv = None;
                }
            }
        }
    }

    /// Analyzes one function under one taint signature; returns the taint
    /// of its return value (`a0` at `ret`).
    fn analyze_fn(&mut self, entry: u64, sig: Sig) -> Taint {
        if let Some(&t) = self.memo.get(&(entry, sig)) {
            return t;
        }
        let conservative = sig.worst();
        if self.depth_budget == 0 || !self.in_progress.insert((entry, sig)) {
            return conservative;
        }
        let Some(func) = self.cfg.functions.get(&entry).cloned() else {
            self.in_progress.remove(&(entry, sig));
            return conservative;
        };
        if !self.cfg.blocks.contains_key(&entry) {
            self.in_progress.remove(&(entry, sig));
            return conservative;
        }

        let mut in_states: BTreeMap<u64, State> = BTreeMap::new();
        in_states.insert(entry, self.initial_state(sig));
        let mut visits: BTreeMap<u64, u32> = BTreeMap::new();
        let mut work: Vec<u64> = vec![entry];
        while let Some(b) = work.pop() {
            if self.depth_budget == 0 {
                break;
            }
            self.depth_budget = self.depth_budget.saturating_sub(1);
            let v = visits.entry(b).or_insert(0);
            *v += 1;
            let widen = *v > WIDEN_AFTER;
            let Some(state) = in_states.get(&b).cloned() else {
                continue;
            };
            let out_state = self.transfer_block(b, state, None);
            let succs = self.cfg.blocks[&b].succs.clone();
            for s in succs {
                if !func.blocks.contains(&s) {
                    continue;
                }
                match in_states.get_mut(&s) {
                    Some(existing) => {
                        if existing.join_from(&out_state, widen) {
                            work.push(s);
                        }
                    }
                    None => {
                        in_states.insert(s, out_state.clone());
                        work.push(s);
                    }
                }
            }
        }

        // Reporting pass over the stabilized states.
        let mut ret_taint: Taint = None;
        for (&b, state) in &in_states {
            let mut report = ReportSink::default();
            let _ = self.transfer_block(b, state.clone(), Some(&mut report));
            ret_taint = taint_join(ret_taint, report.ret_taint);
            self.merge_report(report, entry);
        }

        self.in_progress.remove(&(entry, sig));
        self.memo.insert((entry, sig), ret_taint);
        ret_taint
    }

    fn initial_state(&self, sig: Sig) -> State {
        let mut st = State::top();
        st.set(Reg::SP, AVal::point(layout::STACK_TOP - 64));
        st.set(Reg::FP, AVal::point(layout::STACK_TOP - 64));
        if sig.entry {
            // argc in a0, argv block pointer in a1 (see Machine::load).
            st.set(
                Reg::A0,
                AVal {
                    si: StridedInterval::new(1, 4096, 1),
                    taint: None,
                },
            );
            st.set(Reg::A1, AVal::point(layout::ARGV_BASE));
        } else {
            let args = [
                Reg::A0,
                Reg::A1,
                Reg::A2,
                Reg::A3,
                Reg::A4,
                Reg::A5,
                Reg::SV,
            ];
            for (i, r) in args.into_iter().enumerate() {
                st.set(
                    r,
                    AVal {
                        si: StridedInterval::top(),
                        taint: sig.args[i],
                    },
                );
            }
        }
        st
    }

    fn merge_report(&mut self, r: ReportSink, _fn_entry: u64) {
        // A `jr` unresolved in any context is unresolved, full stop.
        for &pc in &r.jr_unresolved {
            self.poisoned_jr.insert(pc);
        }
        for (pc, info) in r.jr {
            let entry = self
                .out
                .jr
                .entry(pc)
                .or_insert_with(|| (BTreeSet::new(), None));
            if let Some((targets, depth)) = info {
                entry.1 = taint_join(entry.1, depth);
                if !self.poisoned_jr.contains(&pc) {
                    entry.0.extend(targets);
                }
            }
            if self.poisoned_jr.contains(&pc) {
                entry.0.clear();
            }
        }
        self.out.branch_sites.extend(r.branch_sites);
        self.out.feasible.extend(r.feasible);
        for (pc, site) in r.sys_sites {
            let slot = self.out.sys_sites.entry(pc).or_default();
            let mut nums: BTreeSet<u64> = slot.nums.iter().copied().collect();
            nums.extend(site.nums.iter().copied());
            slot.nums = nums.into_iter().collect();
            slot.sv_point |= site.sv_point;
            slot.sv_tainted |= site.sv_tainted;
            slot.a0_taint |= site.a0_taint;
            slot.a1_taint |= site.a1_taint;
        }
        for (pc, d) in r.tainted_loads {
            let e = self.out.tainted_loads.entry(pc).or_insert(0);
            *e = (*e).max(d);
            self.out.max_load_depth = self.out.max_load_depth.max(d);
            if pc < layout::LIB_TEXT_BASE {
                self.out.max_load_depth_exe = self.out.max_load_depth_exe.max(d);
            }
        }
        self.out.tainted_push |= r.tainted_push;
        self.out.fp_tainted |= r.fp_tainted;
        self.out.tainted_div.extend(r.tainted_div);
        self.out.branch_src |= r.branch_src;
        self.out.open_error_branch |= r.open_error_branch;
        self.out.callr_unresolved.extend(r.callr_unresolved);
        self.out.called.extend(r.called);
        self.out.tainted_lib_calls.extend(r.tainted_lib_calls);
        self.out.extra_roots.extend(r.extra_roots);
        self.out.loads_argv |= r.loads_argv;
        for (pc, src) in r.branch_taint {
            *self.out.branch_taint.entry(pc).or_insert(0) |= src;
        }
        for (pc, src) in r.tainted_defs {
            *self.out.tainted_defs.entry(pc).or_insert(0) |= src;
        }
        for (pc, (lo, hi)) in r.static_stores {
            let e = self.out.static_stores.entry(pc).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
        for (pc, (lo, hi)) in r.static_loads {
            let e = self.out.static_loads.entry(pc).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
        self.out.fork_sites.extend(r.fork_sites);
    }

    /// Abstractly executes one block. When `report` is given, facts are
    /// recorded (final pass); effects on global accumulators (cover,
    /// region taint) happen in both modes.
    #[allow(clippy::too_many_lines)]
    fn transfer_block(
        &mut self,
        block: u64,
        mut st: State,
        mut report: Option<&mut ReportSink>,
    ) -> State {
        let insns = self.cfg.blocks[&block].insns.clone();
        for (pc, insn) in insns {
            self.transfer_insn(pc, insn, &mut st, &mut report);
        }
        st
    }

    #[allow(clippy::too_many_lines)]
    fn transfer_insn(
        &mut self,
        pc: u64,
        insn: Insn,
        st: &mut State,
        report: &mut Option<&mut ReportSink>,
    ) {
        match insn {
            Insn::Alu3 { op, rd, rs, rt } => {
                let a = st.get(rs);
                let b = st.get(rt);
                self.note_div(pc, op, &b, report);
                st.set(rd, alu(op, &a, &b));
            }
            Insn::AluI { op, rd, rs, imm } => {
                let a = st.get(rs);
                let b = AVal::point(imm as i64 as u64);
                st.set(rd, alu(op, &a, &b));
            }
            Insn::Mov { rd, rs } => {
                let v = st.get(rs);
                st.set(rd, v);
            }
            Insn::Not { rd, rs } => {
                let a = st.get(rs);
                let si =
                    a.si.as_point()
                        .map_or_else(StridedInterval::top, |v| StridedInterval::point(!v));
                st.set(rd, AVal { si, taint: a.taint });
            }
            Insn::Neg { rd, rs } => {
                let a = st.get(rs);
                let si = a.si.as_point().map_or_else(StridedInterval::top, |v| {
                    StridedInterval::point(v.wrapping_neg())
                });
                st.set(rd, AVal { si, taint: a.taint });
            }
            Insn::Li { rd, imm } => st.set(rd, AVal::point(imm)),
            Insn::Load { op, rd, base, off } => {
                let addr = offset(&st.get(base), off);
                self.record_static_access(pc, &addr, store_width(op), false, report);
                let v = self.load(pc, op, &addr, report);
                if let (Some(m), Some(r)) = (v.taint, report.as_deref_mut()) {
                    *r.tainted_defs.entry(pc).or_insert(0) |= m.src;
                }
                st.set(rd, v);
            }
            Insn::Store { op, src, base, off } => {
                let addr = offset(&st.get(base), off);
                self.record_static_access(pc, &addr, store_width(op), true, report);
                self.store(&addr, store_width(op), st.get(src).taint);
            }
            Insn::Push { rs } => {
                let sp = st.get(Reg::SP);
                let slot = sp.si.sub(&StridedInterval::point(8));
                let taint = st.get(rs).taint;
                self.store(
                    &AVal {
                        si: slot,
                        taint: sp.taint,
                    },
                    8,
                    taint,
                );
                if taint.is_some() {
                    if let Some(r) = report {
                        r.tainted_push = true;
                    }
                }
                st.set(
                    Reg::SP,
                    AVal {
                        si: slot,
                        taint: sp.taint,
                    },
                );
            }
            Insn::Pop { rd } => {
                let sp = st.get(Reg::SP);
                let taint = self.region_taint.get(&Region::Stack).copied();
                if let (Some(m), Some(r)) = (taint, report.as_deref_mut()) {
                    *r.tainted_defs.entry(pc).or_insert(0) |= m.src;
                }
                st.set(
                    rd,
                    AVal {
                        si: StridedInterval::top(),
                        taint,
                    },
                );
                st.set(
                    Reg::SP,
                    AVal {
                        si: sp.si.add(&StridedInterval::point(8)),
                        taint: sp.taint,
                    },
                );
            }
            Insn::Branch { op, rs, rt, .. } => {
                let a = st.get(rs);
                let b = st.get(rt);
                if let Some(r) = report {
                    r.branch_sites.insert(pc);
                    let (taken, fall) = branch_feasible(op, &a.si, &b.si);
                    if taken {
                        r.feasible.insert((pc, true));
                    }
                    if fall {
                        r.feasible.insert((pc, false));
                    }
                    if let Some(m) = taint_join(a.taint, b.taint) {
                        r.branch_src |= m.src;
                        *r.branch_taint.entry(pc).or_insert(0) |= m.src;
                    }
                    let fd_vs_err = |v: &AVal, other: &AVal| {
                        v.taint.is_some_and(|m| m.src & SRC_FD != 0)
                            && other.si.as_point() == Some(u64::MAX)
                    };
                    if fd_vs_err(&a, &b) || fd_vs_err(&b, &a) {
                        r.open_error_branch = true;
                    }
                }
            }
            Insn::Jmp { .. } | Insn::Nop | Insn::Halt => {}
            Insn::Jr { rs } => {
                if let Some(r) = report {
                    let v = st.get(rs);
                    let resolved =
                        v.si.enumerate(MAX_ENUM)
                            .map(|ts| {
                                ts.into_iter()
                                    .filter(|&t| self.code.in_text(t))
                                    .collect::<BTreeSet<u64>>()
                            })
                            .filter(|ts| !ts.is_empty());
                    match resolved {
                        Some(targets) => {
                            r.jr.insert(pc, Some((targets, v.taint)));
                        }
                        None => {
                            r.jr.insert(pc, None);
                            r.jr_unresolved.insert(pc);
                        }
                    }
                }
            }
            Insn::Call { rel } => {
                let callee = pc.wrapping_add_signed(rel.into());
                self.do_call(callee, st, report);
            }
            Insn::Callr { rs } => {
                let v = st.get(rs);
                let targets =
                    v.si.enumerate(16)
                        .map(|ts| {
                            ts.into_iter()
                                .filter(|&t| self.code.in_text(t))
                                .collect::<Vec<u64>>()
                        })
                        .filter(|ts| !ts.is_empty());
                match targets {
                    Some(ts) => {
                        let mut ret: Taint = None;
                        for t in ts {
                            let sig = self.sig_from(st);
                            let r = self.analyze_fn(t, sig);
                            ret = taint_join(ret, r);
                        }
                        self.clobber_for_call(st, ret);
                    }
                    None => {
                        if let Some(r) = report {
                            r.callr_unresolved.insert(pc);
                        }
                        let ret = self.sig_from(st).worst();
                        self.clobber_for_call(st, ret);
                    }
                }
            }
            Insn::Ret => {
                if let Some(r) = report {
                    r.ret_taint = taint_join(r.ret_taint, st.get(Reg::A0).taint);
                }
            }
            Insn::Sys => self.do_sys(pc, st, report),
            Insn::FAlu3 { fd, fs, ft, .. } => {
                st.fregs[fd.index()] = taint_join(st.fregs[fs.index()], st.fregs[ft.index()]);
            }
            Insn::FAlu2 { fd, fs, .. } => st.fregs[fd.index()] = st.fregs[fs.index()],
            Insn::FLd { fd, base, off } => {
                let addr = offset(&st.get(base), off);
                self.record_static_access(pc, &addr, 8, false, report);
                let v = self.load(pc, Opcode::Ld, &addr, report);
                if let (Some(m), Some(r)) = (v.taint, report.as_deref_mut()) {
                    *r.tainted_defs.entry(pc).or_insert(0) |= m.src;
                }
                st.fregs[fd.index()] = v.taint;
            }
            Insn::FSt { fs, base, off } => {
                let addr = offset(&st.get(base), off);
                self.record_static_access(pc, &addr, 8, true, report);
                self.store(&addr, 8, st.fregs[fs.index()]);
            }
            Insn::FLi { fd, .. } => st.fregs[fd.index()] = None,
            Insn::FCvtSiToD { fd, rs } => {
                let t = st.get(rs).taint;
                st.fregs[fd.index()] = t;
                if t.is_some() {
                    if let Some(r) = report {
                        r.fp_tainted = true;
                    }
                }
            }
            Insn::FCvtDToSi { rd, fs } => {
                st.set(
                    rd,
                    AVal {
                        si: StridedInterval::top(),
                        taint: st.fregs[fs.index()],
                    },
                );
            }
            Insn::FBranch { fs, ft, .. } => {
                if let Some(r) = report {
                    if let Some(m) = taint_join(st.fregs[fs.index()], st.fregs[ft.index()]) {
                        r.branch_src |= m.src;
                        *r.branch_taint.entry(pc).or_insert(0) |= m.src;
                        r.fp_tainted = true;
                    }
                }
            }
            Insn::FBits { rd, fs } => {
                st.set(
                    rd,
                    AVal {
                        si: StridedInterval::top(),
                        taint: st.fregs[fs.index()],
                    },
                );
            }
            Insn::FFromBits { fd, rs } => st.fregs[fd.index()] = st.get(rs).taint,
        }
    }

    fn sig_from(&self, st: &State) -> Sig {
        let rs = [
            Reg::A0,
            Reg::A1,
            Reg::A2,
            Reg::A3,
            Reg::A4,
            Reg::A5,
            Reg::SV,
        ];
        let mut args = [None; 7];
        for (i, r) in rs.into_iter().enumerate() {
            args[i] = st.get(r).taint;
        }
        Sig { args, entry: false }
    }

    /// Whether `v` is (provably) a pointer into the argv block: passing
    /// one hands the callee direct access to program input even though
    /// the pointer *value* is loader-chosen and untainted.
    fn points_into_argv(&self, v: &AVal) -> bool {
        !v.si.is_top()
            && self.code.region_of(v.si.lo) == Region::Argv
            && self.code.region_of(v.si.hi) == Region::Argv
    }

    fn do_call(&mut self, callee: u64, st: &mut State, report: &mut Option<&mut ReportSink>) {
        if let Some(r) = report {
            let name = self.code.name_of(callee);
            let input_arg = self.sig_from(st).worst().is_some()
                || [Reg::A0, Reg::A1, Reg::A2]
                    .into_iter()
                    .any(|a| self.points_into_argv(&st.get(a)));
            if callee >= layout::LIB_TEXT_BASE && input_arg {
                r.tainted_lib_calls.insert(name.clone());
            }
            r.called.insert(name);
        }
        if !self.code.in_text(callee) {
            // Runtime stubs (exit, thread_exit) or junk: no data effects.
            self.clobber_for_call(st, None);
            return;
        }
        let sig = self.sig_from(st);
        let ret = self.analyze_fn(callee, sig);
        self.clobber_for_call(st, ret);
    }

    /// Caller-saved registers die at a call: `a0` takes the return value,
    /// `a1..a5`, `sv`, `t0..t7`, `tc`, `tr`, `ra` become unknown.
    fn clobber_for_call(&self, st: &mut State, ret: Taint) {
        st.set(
            Reg::A0,
            AVal {
                si: StridedInterval::top(),
                taint: ret,
            },
        );
        for i in [2u8, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 26, 27, 31] {
            st.regs[i as usize] = AVal::top();
        }
        for f in &mut st.fregs {
            *f = None;
        }
    }

    fn note_div(
        &mut self,
        pc: u64,
        op: Opcode,
        divisor: &AVal,
        report: &mut Option<&mut ReportSink>,
    ) {
        if matches!(
            op,
            Opcode::Divu | Opcode::Divs | Opcode::Remu | Opcode::Rems
        ) && divisor.si.contains(0)
            && divisor.taint.is_some()
        {
            if let Some(r) = report {
                r.tainted_div.insert(pc);
            }
        }
    }

    fn load(
        &mut self,
        pc: u64,
        op: Opcode,
        addr: &AVal,
        report: &mut Option<&mut ReportSink>,
    ) -> AVal {
        let width = store_width(op);
        // The argv *pointer array* (first few quadwords of the argv block)
        // is loader-controlled, not input: reading it yields an untainted
        // pointer somewhere into the argv string area. Only the string
        // bytes themselves are input.
        if addr.taint.is_none()
            && addr.si.lo >= layout::ARGV_BASE
            && addr.si.hi < layout::ARGV_BASE + 64
        {
            return AVal {
                si: StridedInterval::new(
                    layout::ARGV_BASE + 8,
                    layout::ARGV_BASE + layout::ARGV_SIZE - 1,
                    1,
                ),
                taint: None,
            };
        }
        // Region-level taint of the loaded cell.
        let lo_region = self.code.region_of(addr.si.lo);
        let hi_region = self.code.region_of(addr.si.hi);
        let mut taint = match (lo_region, hi_region) {
            (Region::Argv, _) | (_, Region::Argv) => mark(0, SRC_ARGV),
            _ if addr.si.is_top() => mark(0, SRC_ARGV), // could read argv
            _ => {
                let a = self.region_taint.get(&lo_region).copied();
                let b = self.region_taint.get(&hi_region).copied();
                taint_join(a, b)
            }
        };
        if let Some(m) = addr.taint {
            let d = m.depth.saturating_add(1).min(MAX_DEPTH);
            taint = taint_join(taint, mark(d, m.src));
            if let Some(r) = report {
                let e = r.tainted_loads.entry(pc).or_insert(0);
                *e = (*e).max(d);
            }
        }
        if let Some(r) = report {
            if matches!(lo_region, Region::Argv) || matches!(hi_region, Region::Argv) {
                r.loads_argv = true;
            }
        }
        // Static resolution: concrete contents of provably unwritten data.
        if self.resolve && !addr.si.is_top() {
            if let Some(addrs) = addr.si.enumerate(64) {
                let span_ok = addrs.iter().all(|&a| {
                    self.code.in_static(a) && self.code.in_static(a.saturating_add(width - 1))
                });
                let unwritten = !self
                    .prior_cover
                    .overlaps(addr.si.lo, addr.si.hi.saturating_add(width - 1));
                if span_ok && unwritten {
                    let mut si: Option<StridedInterval> = None;
                    let mut ok = true;
                    for a in addrs {
                        match self.code.read_uint(a, width) {
                            Some(raw) => {
                                let v = extend_load(op, raw);
                                let p = StridedInterval::point(v);
                                si = Some(match si {
                                    None => p,
                                    Some(s) => s.join(&p),
                                });
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if let Some(si) = si {
                            return AVal { si, taint };
                        }
                    }
                }
            }
        }
        AVal {
            si: StridedInterval::top(),
            taint,
        }
    }

    /// Records a bounded memory access that touches static data: the raw
    /// material for the data-flow layer's shared-memory race detection.
    fn record_static_access(
        &self,
        pc: u64,
        addr: &AVal,
        width: u64,
        is_store: bool,
        report: &mut Option<&mut ReportSink>,
    ) {
        let Some(r) = report.as_deref_mut() else {
            return;
        };
        if addr.si.is_top() {
            return;
        }
        let lo = addr.si.lo;
        let hi = addr.si.hi.saturating_add(width.saturating_sub(1));
        if self.code.region_of(lo) != Region::Static && self.code.region_of(hi) != Region::Static {
            return;
        }
        let map = if is_store {
            &mut r.static_stores
        } else {
            &mut r.static_loads
        };
        let e = map.entry(pc).or_insert((lo, hi));
        e.0 = e.0.min(lo);
        e.1 = e.1.max(hi);
    }

    fn store(&mut self, addr: &AVal, width: u64, taint: Taint) {
        if addr.si.is_top() || addr.si.count() > MAX_ENUM {
            self.cover.unknown = true;
            // An unbounded tainted store could reach any region.
            if taint.is_some() {
                for region in [Region::Static, Region::Stack, Region::Other] {
                    self.raise_region(region, taint);
                }
            }
            return;
        }
        self.cover
            .add(addr.si.lo, addr.si.hi.saturating_add(width - 1));
        if taint.is_some() {
            for region in [
                self.code.region_of(addr.si.lo),
                self.code.region_of(addr.si.hi),
            ] {
                self.raise_region(region, taint);
            }
        }
    }

    fn raise_region(&mut self, region: Region, taint: Taint) {
        let cur = self.region_taint.get(&region).copied();
        if let Some(j) = taint_join(cur, taint) {
            self.region_taint.insert(region, j);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn do_sys(&mut self, pc: u64, st: &mut State, report: &mut Option<&mut ReportSink>) {
        let sv = st.get(Reg::SV);
        let a0 = st.get(Reg::A0);
        let a1 = st.get(Reg::A1);
        let a2 = st.get(Reg::A2);
        let nums = sv.si.enumerate(16).unwrap_or_default();
        if let Some(r) = report {
            let site = r.sys_sites.entry(pc).or_default();
            site.nums = nums.clone();
            site.sv_point = sv.si.is_point();
            site.sv_tainted = sv.taint.is_some();
            // A filename (or buffer) argument is input-derived either when
            // its value is tainted or when it points straight at argv.
            site.a0_taint = a0.taint.is_some() || self.points_into_argv(&a0);
            site.a1_taint = a1.taint.is_some();
        }
        if nums.is_empty() {
            // Unknown syscall number: could be `read` into anywhere.
            self.cover.unknown = true;
            if let Some(r) = report {
                *r.tainted_defs.entry(pc).or_insert(0) |= SRC_ENV;
            }
            st.set(
                Reg::A0,
                AVal {
                    si: StridedInterval::top(),
                    taint: mark(0, SRC_ENV),
                },
            );
            return;
        }
        let mut ret = AVal::top();
        for &num in &nums {
            match num {
                sys::TIME
                | sys::GETUID
                | sys::FORK
                | sys::WAITPID
                | sys::THREAD_JOIN
                | sys::LSEEK => {
                    if num == sys::FORK {
                        if let Some(r) = report.as_deref_mut() {
                            r.fork_sites.insert(pc);
                        }
                    }
                    // Environment / kernel-state returns: input-dependent
                    // (epoch, uid, scheduling, file positions).
                    ret.taint = taint_join(ret.taint, mark(0, SRC_ENV));
                }
                sys::READ | sys::NET_GET => {
                    ret.taint = taint_join(ret.taint, mark(0, SRC_ENV));
                    let len = if a2.si.is_top() { 4096 } else { a2.si.hi };
                    let buf = AVal {
                        si: a1.si,
                        taint: a1.taint,
                    };
                    self.record_static_access(pc, &buf, len.max(1), true, report);
                    self.store(&buf, len.max(1), mark(0, SRC_ENV));
                }
                sys::OPEN => {
                    // The fd (or −1 on failure). Not an input source, but
                    // marked so fd-vs-−1 error checks are recognizable.
                    ret.taint = taint_join(ret.taint, mark(0, SRC_FD));
                }
                sys::PIPE => {
                    self.store(&a0, 16, None);
                }
                sys::SET_TRAP_HANDLER => {
                    if let Some(h) = a0.si.as_point() {
                        if self.code.in_text(h) {
                            if let Some(r) = report {
                                r.extra_roots.insert(h, format!("trap_handler_{h:#x}"));
                            }
                        }
                    }
                }
                sys::THREAD_SPAWN => {
                    if let Some(h) = a0.si.as_point() {
                        if self.code.in_text(h) {
                            if let Some(r) = report {
                                r.extra_roots.insert(h, format!("thread_entry_{h:#x}"));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if let (Some(m), Some(r)) = (ret.taint, report.as_deref_mut()) {
            *r.tainted_defs.entry(pc).or_insert(0) |= m.src;
        }
        st.set(Reg::A0, ret);
    }
}

/// Per-reporting-pass fact sink, merged into [`VsaOut`].
#[derive(Debug, Default)]
struct ReportSink {
    jr: BTreeMap<u64, Option<(BTreeSet<u64>, Taint)>>,
    jr_unresolved: BTreeSet<u64>,
    branch_sites: BTreeSet<u64>,
    feasible: BTreeSet<(u64, bool)>,
    sys_sites: BTreeMap<u64, SysSite>,
    tainted_loads: BTreeMap<u64, u8>,
    tainted_push: bool,
    fp_tainted: bool,
    tainted_div: BTreeSet<u64>,
    branch_src: u8,
    open_error_branch: bool,
    callr_unresolved: BTreeSet<u64>,
    called: BTreeSet<String>,
    tainted_lib_calls: BTreeSet<String>,
    extra_roots: BTreeMap<u64, String>,
    loads_argv: bool,
    ret_taint: Taint,
    branch_taint: BTreeMap<u64, u8>,
    tainted_defs: BTreeMap<u64, u8>,
    static_stores: BTreeMap<u64, (u64, u64)>,
    static_loads: BTreeMap<u64, (u64, u64)>,
    fork_sites: BTreeSet<u64>,
}

/// `base + off` with a signed displacement.
fn offset(base: &AVal, off: i32) -> AVal {
    let d = StridedInterval::point(off.unsigned_abs().into());
    let si = if off >= 0 {
        base.si.add(&d)
    } else {
        base.si.sub(&d)
    };
    AVal {
        si,
        taint: base.taint,
    }
}

fn store_width(op: Opcode) -> u64 {
    match op {
        Opcode::Sb | Opcode::Lb | Opcode::Lbu => 1,
        Opcode::Sh | Opcode::Lh | Opcode::Lhu => 2,
        Opcode::Sw | Opcode::Lw | Opcode::Lwu => 4,
        _ => 8,
    }
}

/// Sign/zero-extends a raw little-endian load exactly like the VM.
fn extend_load(op: Opcode, raw: u64) -> u64 {
    match op {
        Opcode::Lb => raw as u8 as i8 as i64 as u64,
        Opcode::Lbu => u64::from(raw as u8),
        Opcode::Lh => raw as u16 as i16 as i64 as u64,
        Opcode::Lhu => u64::from(raw as u16),
        Opcode::Lw => raw as u32 as i32 as i64 as u64,
        Opcode::Lwu => u64::from(raw as u32),
        _ => raw,
    }
}

/// Abstract ALU evaluation.
fn alu(op: Opcode, a: &AVal, b: &AVal) -> AVal {
    use Opcode::{
        Add, AddI, And, AndI, Divu, Mul, MulI, Or, OrI, Remu, Shl, ShlI, Shru, ShruI, Slt, SltI,
        Sltu, SltuI, Sub, Xor, XorI,
    };
    let taint = taint_join(a.taint, b.taint);
    let (x, y) = (&a.si, &b.si);
    let si = match op {
        // A negative addend (e.g. `addi sp, sp, -16`) is a subtraction;
        // treating it as a huge unsigned add would widen to ⊤ and poison
        // every stack-relative address downstream.
        Add | AddI => match (x.as_point(), y.as_point()) {
            (_, Some(k)) if (k as i64) < 0 => x.sub(&StridedInterval::point(k.wrapping_neg())),
            (Some(k), _) if (k as i64) < 0 => y.sub(&StridedInterval::point(k.wrapping_neg())),
            _ => x.add(y),
        },
        Sub => x.sub(y),
        Mul | MulI => x.mul(y),
        Divu => x.udiv(y),
        Remu => x.urem(y),
        And | AndI => x.and(y),
        Or | OrI => x.or(y),
        Xor | XorI => x.xor(y),
        Shl | ShlI => y.as_point().map_or_else(StridedInterval::top, |k| x.shl(k)),
        Shru | ShruI => y
            .as_point()
            .map_or_else(|| StridedInterval::new(0, x.hi, 1), |k| x.shr(k)),
        Sltu | SltuI => {
            if x.hi < y.lo {
                StridedInterval::point(1)
            } else if x.lo >= y.hi {
                StridedInterval::point(0)
            } else {
                StridedInterval::new(0, 1, 1)
            }
        }
        Slt | SltI => match (x.as_point(), y.as_point()) {
            (Some(p), Some(q)) => StridedInterval::point(u64::from((p as i64) < (q as i64))),
            _ => StridedInterval::new(0, 1, 1),
        },
        _ => StridedInterval::top(), // signed div/rem/shift: exact only on points
    };
    let si = match (op, x.as_point(), y.as_point()) {
        (Opcode::Divs, Some(p), Some(q)) if q != 0 && !(p == u64::MAX / 2 + 1 && q == u64::MAX) => {
            StridedInterval::point(((p as i64).wrapping_div(q as i64)) as u64)
        }
        (Opcode::Rems, Some(p), Some(q)) if q != 0 => {
            StridedInterval::point(((p as i64).wrapping_rem(q as i64)) as u64)
        }
        (Opcode::Shrs | Opcode::ShrsI, Some(p), Some(q)) => {
            StridedInterval::point(((p as i64) >> (q.min(63))) as u64)
        }
        _ => si,
    };
    AVal { si, taint }
}

/// Which ways can this branch go, given operand sets? Returns
/// `(taken_feasible, fallthrough_feasible)`. `false` must be *proof*.
fn branch_feasible(op: Opcode, a: &StridedInterval, b: &StridedInterval) -> (bool, bool) {
    let may_eq = may_equal(a, b);
    let must_eq = a.is_point() && b.is_point() && a.lo == b.lo;
    match op {
        Opcode::Beq => (may_eq, !must_eq),
        Opcode::Bne => (!must_eq, may_eq),
        Opcode::Bltu => (a.lo < b.hi, a.hi >= b.lo),
        Opcode::Bgeu => (a.hi >= b.lo, a.lo < b.hi),
        Opcode::Blt => match (a.as_point(), b.as_point()) {
            (Some(p), Some(q)) => {
                let t = (p as i64) < (q as i64);
                (t, !t)
            }
            _ => (true, true),
        },
        Opcode::Bge => match (a.as_point(), b.as_point()) {
            (Some(p), Some(q)) => {
                let t = (p as i64) >= (q as i64);
                (t, !t)
            }
            _ => (true, true),
        },
        _ => (true, true),
    }
}

/// Can the two sets share an element? `false` only on proof of disjointness
/// (bounds or congruence).
fn may_equal(a: &StridedInterval, b: &StridedInterval) -> bool {
    if !a.may_overlap(b) {
        return false;
    }
    let g = bomblab_interval::gcd(a.stride, b.stride);
    if g > 1 && a.lo % g != b.lo % g {
        return false; // incongruent residues can never collide
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_feasibility_proofs() {
        let small = StridedInterval::new(0, 3, 1);
        let nine = StridedInterval::point(9);
        // beq [0,3], 9 can never be taken.
        assert_eq!(branch_feasible(Opcode::Beq, &small, &nine), (false, true));
        // bne always taken for disjoint sets.
        assert_eq!(branch_feasible(Opcode::Bne, &small, &nine), (true, false));
        // congruence: {0,8,16} vs {4,12} never equal.
        let evens = StridedInterval::new(0, 16, 8);
        let odds = StridedInterval::new(4, 12, 8);
        assert!(!may_equal(&evens, &odds));
        // bltu: [5,7] < [0,3] is impossible.
        let hi = StridedInterval::new(5, 7, 1);
        let lo = StridedInterval::new(0, 3, 1);
        assert_eq!(branch_feasible(Opcode::Bltu, &hi, &lo), (false, true));
    }

    #[test]
    fn taint_lattice() {
        assert_eq!(taint_join(None, mark(2, SRC_ARGV)), mark(2, SRC_ARGV));
        assert_eq!(
            taint_join(mark(1, SRC_ARGV), mark(3, SRC_ENV)),
            mark(3, SRC_ARGV | SRC_ENV)
        );
        assert_eq!(taint_join(None, None), None);
        // Depth saturates at the cap.
        assert_eq!(
            taint_join(mark(MAX_DEPTH, SRC_ARGV), mark(200, SRC_ARGV)),
            mark(MAX_DEPTH, SRC_ARGV)
        );
    }
}
