//! # bomblab-sa — static binary analysis for BVM images
//!
//! Analyzes a linked bomb image *without executing it*:
//!
//! 1. **CFG recovery** ([`cfg`]): recursive-descent disassembly from the
//!    entry point and every text symbol, basic blocks, call graph,
//!    dominator trees, with explicit degrade-to-`.byte` paths where
//!    decoding fails.
//! 2. **Value-set analysis** ([`vsa`]): strided-interval abstract
//!    interpretation that resolves `jr` jump-table targets, proves branch
//!    edges infeasible, and tracks input taint (depth × source) through
//!    registers, memory regions, and call summaries.
//! 3. **Challenge lints** ([`lints`]): one typed diagnostic per challenge
//!    family from the paper, each predicting the failure stage of every
//!    capability profile — a static forecast of the Table II row.
//!
//! The CFG and the VSA iterate: resolved indirect-jump targets and
//! discovered trap-handler/thread-entry roots feed back into descent
//! until the recovered graph is stable.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod callgraph;
pub mod cfg;
pub mod code;
pub mod dataflow;
pub mod dom;
pub mod lints;
pub mod taint;
pub mod vsa;

pub use lints::{predict, Anchors, Capabilities, Facts, Lint, LintKind, Stage, Style, TrapModel};
pub use vsa::{Mark, SRC_ARGV, SRC_ENV};

use bomblab_isa::image::{layout, Image};
use bomblab_isa::{sys, Insn, InsnClass};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Maximum CFG↔VSA refinement rounds.
const MAX_ROUNDS: usize = 4;

/// The complete result of statically analyzing one bomb image.
#[derive(Debug)]
pub struct Analysis {
    /// Entry point of the analyzed image.
    pub entry: u64,
    /// The recovered control-flow graph (final refinement round).
    pub cfg: cfg::Cfg,
    /// Raw value-set-analysis facts.
    pub vsa: vsa::VsaOut,
    /// Distilled whole-bomb facts.
    pub facts: Facts,
    /// Anchoring addresses for whole-program lints.
    pub anchors: Anchors,
    /// The challenge lints.
    pub lints: Vec<Lint>,
    /// Bomb-level stage prediction per capability profile.
    pub predictions: Vec<(String, Stage)>,
    /// Number of refinement rounds actually run.
    pub rounds: usize,
    /// Whether the resolve pass was kept (its store cover stayed within
    /// the collect pass's cover) or discarded for the conservative one.
    pub resolve_sound: bool,
    /// Interprocedural data-flow products (call graph, def-use chains,
    /// static taint reachability).
    pub dataflow: Dataflow,
    code: code::CodeMap,
}

/// The interprocedural data-flow layer built on top of the final CFG/VSA
/// round: call graph, per-function def-use chains, and the static taint
/// closure with its engine-facing products.
#[derive(Debug, Clone, Default)]
pub struct Dataflow {
    /// The program call graph.
    pub graph: callgraph::CallGraph,
    /// Def-use facts per function entry.
    pub flows: BTreeMap<u64, dataflow::FuncFlow>,
    /// Static taint reachability and derived flip hints.
    pub taint: taint::StaticTaint,
}

/// Analyzes `exe` (linked against optional `lib`) under the four paper
/// capability profiles.
#[must_use]
pub fn analyze(exe: &Image, lib: Option<&Image>) -> Analysis {
    analyze_with(exe, lib, &Capabilities::paper_profiles())
}

/// Analyzes with a caller-chosen set of capability profiles.
#[must_use]
pub fn analyze_with(exe: &Image, lib: Option<&Image>, profiles: &[Capabilities]) -> Analysis {
    let obs_timer = bomblab_obs::start();
    let analysis = analyze_inner(exe, lib, profiles);
    if let Some(t0) = obs_timer {
        bomblab_obs::span_ns("sa.analyze", t0.elapsed().as_nanos() as u64);
        bomblab_obs::counter("sa.cfg_blocks", analysis.cfg.blocks.len() as u64);
        bomblab_obs::counter("sa.lints", analysis.lints.len() as u64);
        bomblab_obs::counter("sa.rounds", analysis.rounds as u64);
        bomblab_obs::counter(
            "sa.branches_independent",
            analysis.dataflow.taint.independent.len() as u64,
        );
        bomblab_obs::counter(
            "sa.branches_tainted",
            analysis.dataflow.taint.tainted_branches.len() as u64,
        );
    }
    analysis
}

#[allow(clippy::too_many_lines, clippy::missing_panics_doc)]
fn analyze_inner(exe: &Image, lib: Option<&Image>, profiles: &[Capabilities]) -> Analysis {
    // Resolve imports exactly like the VM loader, so call targets point
    // into library text. Unresolvable imports are left in place; calls
    // through them degrade to gaps, never to wrong edges.
    let mut exe = exe.clone();
    if !exe.imports.is_empty() {
        if let Some(l) = lib {
            let _ = exe.resolve_imports(&l.symbols);
        }
    }
    let code = code::CodeMap::new(&exe, lib);
    let mut roots = code.text_symbols();
    roots
        .entry(exe.entry)
        .or_insert_with(|| code.name_of(exe.entry));

    // CFG ↔ VSA refinement loop.
    let mut input = cfg::CfgInput::default();
    let mut tainted_roots: BTreeSet<u64> = BTreeSet::new();
    let mut graph = cfg::build(&code, &roots, &input);
    let mut out;
    let mut resolve_sound;
    let mut rounds = 0;
    loop {
        rounds += 1;
        // Collect pass: no load resolution, builds the store cover.
        let collect = vsa::Vsa::run(
            &code,
            &graph,
            exe.entry,
            false,
            vsa::Cover::default(),
            &tainted_roots,
        );
        // Resolve pass: reads provably unwritten static data concretely.
        let resolve = vsa::Vsa::run(
            &code,
            &graph,
            exe.entry,
            true,
            collect.cover.clone(),
            &tainted_roots,
        );
        // Soundness gate: resolution must not have *widened* the set of
        // written addresses (which would invalidate what it read).
        resolve_sound = resolve.cover.within(&collect.cover);
        out = if resolve_sound {
            resolve.out
        } else {
            collect.out
        };

        let next = cfg::CfgInput {
            jr_targets: out
                .jr
                .iter()
                .map(|(&pc, (targets, _))| (pc, targets.clone()))
                .collect(),
            extra_roots: out.extra_roots.clone(),
        };
        if rounds >= MAX_ROUNDS
            || (next.jr_targets == input.jr_targets && next.extra_roots == input.extra_roots)
        {
            break;
        }
        tainted_roots = next.extra_roots.keys().copied().collect();
        input = next;
        graph = cfg::build(&code, &roots, &input);
    }

    let (facts, anchors) = distill(&code, &graph, &out);
    let mut lint_list = lints::lints(&facts, &anchors, profiles);
    let predictions = profiles
        .iter()
        .map(|c| (c.name.clone(), predict(&facts, c)))
        .collect();
    let flow = build_dataflow(&code, &graph, &out, profiles);
    for race in &flow.taint.races {
        lint_list.push(Lint {
            kind: LintKind::SharedMemRace {
                load_pc: race.load_pc,
            },
            pc: race.store_pc,
            detail: format!(
                "store races load at {:#x} on [{:#x}, {:#x}]",
                race.load_pc, race.lo, race.hi
            ),
            stages: profiles
                .iter()
                .map(|c| (c.name.clone(), Stage::Solved))
                .collect(),
        });
    }
    Analysis {
        entry: exe.entry,
        cfg: graph,
        vsa: out,
        facts,
        anchors,
        lints: lint_list,
        predictions,
        rounds,
        resolve_sound,
        dataflow: flow,
        code,
    }
}

/// Runs the data-flow layer (call graph, def-use, taint closure) on the
/// final refinement round's CFG and VSA report.
fn build_dataflow(
    code: &code::CodeMap,
    graph: &cfg::Cfg,
    out: &vsa::VsaOut,
    _profiles: &[Capabilities],
) -> Dataflow {
    let timer = bomblab_obs::start();
    let cg = callgraph::CallGraph::build(graph);
    if let Some(t0) = timer {
        bomblab_obs::span_ns("sa.callgraph", t0.elapsed().as_nanos() as u64);
    }

    let timer = bomblab_obs::start();
    let flows: BTreeMap<u64, dataflow::FuncFlow> = graph
        .functions
        .iter()
        .map(|(&e, f)| (e, dataflow::analyze_function(f, &graph.blocks)))
        .collect();
    if let Some(t0) = timer {
        bomblab_obs::span_ns("sa.dataflow", t0.elapsed().as_nanos() as u64);
        bomblab_obs::counter(
            "sa.du_edges",
            flows
                .values()
                .map(dataflow::FuncFlow::edge_count)
                .sum::<usize>() as u64,
        );
    }

    let timer = bomblab_obs::start();
    let bomb_entries: BTreeSet<u64> = graph
        .functions
        .keys()
        .filter(|&&e| code.name_of(e) == "bomb_boom")
        .copied()
        .collect();
    let parallel_roots: Vec<u64> = out
        .extra_roots
        .iter()
        .filter(|(_, n)| n.starts_with("thread_entry"))
        .map(|(&a, _)| a)
        .collect();
    let exit_sites: BTreeSet<u64> = out
        .sys_sites
        .iter()
        .filter(|(_, s)| {
            s.sv_point
                && !s.sv_tainted
                && !s.nums.is_empty()
                && s.nums
                    .iter()
                    .all(|&n| n == bomblab_isa::sys::EXIT || n == bomblab_isa::sys::THREAD_EXIT)
        })
        .map(|(&pc, _)| pc)
        .collect();
    let taint_out = taint::analyze(&taint::TaintInput {
        cfg: graph,
        flows: &flows,
        graph: &cg,
        tainted_defs: &out.tainted_defs,
        branch_taint: &out.branch_taint,
        static_stores: &out.static_stores,
        static_loads: &out.static_loads,
        bomb_entries: &bomb_entries,
        parallel_roots: &parallel_roots,
        fork_sites: &out.fork_sites,
        exit_sites: &exit_sites,
    });
    if let Some(t0) = timer {
        bomblab_obs::span_ns("sa.taint", t0.elapsed().as_nanos() as u64);
    }
    Dataflow {
        graph: cg,
        flows,
        taint: taint_out,
    }
}

/// Library routines whose constraint chains blow small solver budgets.
const CRYPTO_ROUTINES: [&str; 3] = ["sha1", "aes128_encrypt", "srand"];

/// Distills whole-bomb [`Facts`] from the recovered graph and VSA output.
#[allow(clippy::too_many_lines)]
fn distill(code: &code::CodeMap, graph: &cfg::Cfg, out: &vsa::VsaOut) -> (Facts, Anchors) {
    let mut anchors = Anchors::default();
    let mut f = Facts::default();

    // Floating-point instruction classes present in reachable code,
    // split by executable vs library text.
    let mut fp_exe = false;
    let mut fp_lib = false;
    for b in graph.blocks.values() {
        for &(pc, insn) in &b.insns {
            let fp = matches!(
                insn.class(),
                InsnClass::FpArith | InsnClass::FpConvert | InsnClass::FpBranch | InsnClass::FpMem
            ) || matches!(insn, Insn::FLd { .. } | Insn::FSt { .. } | Insn::FLi { .. });
            if fp {
                if pc < layout::LIB_TEXT_BASE {
                    fp_exe = true;
                } else {
                    fp_lib = true;
                }
                if anchors.float_pc == 0 || pc < anchors.float_pc {
                    anchors.float_pc = pc;
                }
                if matches!(insn.class(), InsnClass::FpConvert) {
                    f.fp_convert = true;
                }
                if matches!(insn.class(), InsnClass::FpBranch) {
                    f.fp_branch = true;
                }
            }
        }
    }
    f.has_float = out.fp_tainted;
    f.float_lib_only = !fp_exe && fp_lib;

    f.max_indirection = out.max_load_depth;
    f.max_indirection_exe = out.max_load_depth_exe;
    if let Some((&pc, &d)) = out
        .tainted_loads
        .iter()
        .max_by_key(|&(&pc, &d)| (d, std::cmp::Reverse(pc)))
    {
        anchors.load_pc = pc;
        let _ = d;
    }

    // Symbolic jumps: the deepest tainted `jr`.
    for (&pc, (targets, taint)) in &out.jr {
        if let Some(m) = taint {
            if f.sym_jump_depth.is_none_or(|d| m.depth > d) {
                f.sym_jump_depth = Some(m.depth);
                f.sym_jump_targets = targets.len();
                anchors.jr_pc = pc;
            }
        }
    }

    // Syscall facts. The needs_* sources only count when *declared*: the
    // syscall number is untainted, so the call certainly happens with that
    // number (a tainted `sv` enumerating {TIME, GETPID} is a contextual
    // trick, not a time dependence).
    for (&pc, site) in &out.sys_sites {
        if anchors.sys_pc == 0 {
            anchors.sys_pc = pc;
        }
        f.sys_nums.extend(site.nums.iter().copied());
        if site.sv_tainted {
            f.ctx_sysnum = true;
        } else {
            f.needs_time |= site.nums.contains(&sys::TIME);
            f.needs_uid |= site.nums.contains(&sys::GETUID);
            f.needs_net |= site.nums.contains(&sys::NET_GET);
        }
        if site.nums.contains(&sys::OPEN) && site.a0_taint {
            f.ctx_filename = true;
        }
    }
    let installed_trap_handler = out
        .extra_roots
        .values()
        .any(|n| n.starts_with("trap_handler"));
    anchors.div_sites = out.tainted_div.clone();
    anchors.div_pc = out.tainted_div.iter().next().copied().unwrap_or(0);
    f.trap_flow = installed_trap_handler && !out.tainted_div.is_empty();

    f.env_branch = out.branch_src & SRC_ENV != 0;
    f.argv_branch = out.branch_src & SRC_ARGV != 0;
    f.covert_file = f.sys_nums.contains(&sys::OPEN)
        && f.sys_nums.contains(&sys::WRITE)
        && f.sys_nums.contains(&sys::READ);
    f.open_error_branch = out.open_error_branch;
    f.covert_kernel = f.sys_nums.contains(&sys::LSEEK);
    f.uses_forks = f.sys_nums.contains(&sys::FORK);
    f.uses_threads = f.sys_nums.contains(&sys::THREAD_SPAWN);
    f.tainted_push = out.tainted_push;
    anchors.push_pc = 0;
    f.tainted_lib_calls = out.tainted_lib_calls.clone();

    f.crypto = CRYPTO_ROUTINES
        .iter()
        .find(|n| out.tainted_lib_calls.contains(**n))
        .map(|n| ((*n).to_string(), true))
        .or_else(|| crypto_loop_in_exe(code, graph).map(|name| (name, false)));
    f.argv_len_branch = out.tainted_lib_calls.contains("strlen");
    (f, anchors)
}

/// Crypto-loop signature: a loop body in *executable* text mixing
/// multiplies/shifts with xors at unusual density — the shape of a cipher
/// round or an LCG, inlined rather than called.
fn crypto_loop_in_exe(_code: &code::CodeMap, graph: &cfg::Cfg) -> Option<String> {
    use bomblab_isa::Opcode;
    for func in graph.functions.values() {
        if func.entry >= layout::LIB_TEXT_BASE {
            continue;
        }
        for &header in &func.loop_headers {
            let mut mul_shift = 0usize;
            let mut xor = 0usize;
            // Approximate the loop body by the blocks dominated by the
            // header (cheap and good enough for a signature).
            for &b in &func.blocks {
                let mut d = b;
                let dominated = loop {
                    if d == header {
                        break true;
                    }
                    let Some(&up) = func.idom.get(&d) else {
                        break false;
                    };
                    if up == d {
                        break false;
                    }
                    d = up;
                };
                if !dominated {
                    continue;
                }
                for (_, insn) in &graph.blocks[&b].insns {
                    if let Insn::Alu3 { op, .. } | Insn::AluI { op, .. } = insn {
                        match op {
                            Opcode::Mul | Opcode::MulI | Opcode::Shl | Opcode::ShlI => {
                                mul_shift += 1;
                            }
                            Opcode::Xor | Opcode::XorI => xor += 1,
                            _ => {}
                        }
                    }
                }
            }
            if mul_shift >= 3 && xor >= 2 {
                return Some(func.name.clone());
            }
        }
    }
    None
}

impl Analysis {
    /// Branch edges proved statically infeasible (prunable for symex).
    #[must_use]
    pub fn infeasible_edges(&self) -> BTreeSet<(u64, bool)> {
        self.vsa.infeasible_edges()
    }

    /// Resolved `jr` targets: site → statically proven successor set.
    #[must_use]
    pub fn jr_targets(&self) -> BTreeMap<u64, BTreeSet<u64>> {
        self.vsa
            .jr
            .iter()
            .filter(|(_, (t, _))| !t.is_empty())
            .map(|(&pc, (t, _))| (pc, t.clone()))
            .collect()
    }

    /// One-line deterministic CFG summary, the unit of the golden
    /// snapshot tests.
    #[must_use]
    pub fn summary(&self) -> String {
        let resolved: usize = self
            .vsa
            .jr
            .values()
            .filter(|(t, _)| !t.is_empty())
            .map(|(t, _)| t.len())
            .sum();
        let unresolved = self.vsa.jr.values().filter(|(t, _)| t.is_empty()).count();
        format!(
            "blocks={} edges={} functions={} gaps={} jr_sites={} jr_targets={} jr_unresolved={} infeasible={} lints={}",
            self.cfg.blocks.len(),
            self.cfg.edge_count(),
            self.cfg.functions.len(),
            self.cfg.gaps.len(),
            self.vsa.jr.len(),
            resolved,
            unresolved,
            self.infeasible_edges().len(),
            self.lints.len(),
        )
    }

    /// One-line deterministic data-flow summary, the unit of the
    /// `--dataflow` golden snapshot tests.
    #[must_use]
    pub fn dataflow_summary(&self) -> String {
        let t = &self.dataflow.taint;
        let du_edges: usize = self
            .dataflow
            .flows
            .values()
            .map(dataflow::FuncFlow::edge_count)
            .sum();
        let call_edges: usize = self
            .dataflow
            .graph
            .callees
            .values()
            .map(BTreeSet::len)
            .sum();
        let slice_pcs: usize = t.slices.values().map(BTreeSet::len).sum();
        format!(
            "branches={} tainted={} independent={} du_edges={} call_edges={} slice_pcs={} races={} sound={}",
            t.branch_sites.len(),
            t.tainted_branches.len(),
            t.independent.len(),
            du_edges,
            call_edges,
            slice_pcs,
            t.races.len(),
            u8::from(self.resolve_sound),
        )
    }

    /// Objdump-style annotated listing of the executable's text: every
    /// recovered function with block leaders, instructions, and lint
    /// annotations anchored at their addresses.
    #[must_use]
    pub fn listing(&self) -> String {
        self.listing_inner(false)
    }

    /// [`Analysis::listing`] plus per-branch data-flow annotations:
    /// taint source mask and seed distance, flip priority, and proven
    /// input-independence.
    #[must_use]
    pub fn listing_dataflow(&self) -> String {
        self.listing_inner(true)
    }

    #[allow(clippy::too_many_lines, clippy::missing_panics_doc)]
    fn listing_inner(&self, with_dataflow: bool) -> String {
        let mut notes: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for lint in &self.lints {
            let stages: Vec<String> = lint
                .stages
                .iter()
                .map(|(n, s)| format!("{n}:{s}"))
                .collect();
            notes.entry(lint.pc).or_default().push(format!(
                "[{}] {} ({})",
                lint.kind.code(),
                lint.detail,
                stages.join(" ")
            ));
        }
        for (&pc, (targets, _)) in &self.vsa.jr {
            let note = if targets.is_empty() {
                "jr: unresolved".to_string()
            } else {
                let ts: Vec<String> = targets.iter().map(|t| format!("{t:#x}")).collect();
                format!("jr -> {{{}}}", ts.join(", "))
            };
            notes.entry(pc).or_default().push(note);
        }
        for &(pc, taken) in &self.infeasible_edges() {
            notes.entry(pc).or_default().push(format!(
                "branch: {} edge infeasible",
                if taken { "taken" } else { "fall-through" }
            ));
        }
        if with_dataflow {
            let t = &self.dataflow.taint;
            for &pc in &t.branch_sites {
                if pc >= layout::LIB_TEXT_BASE {
                    continue;
                }
                let prio = t.priority.get(&pc).copied().unwrap_or(0);
                let note = if let Some(mask) = t.tainted_branches.get(&pc) {
                    let dist = t.distance.get(&pc).copied().unwrap_or(0);
                    let slice = t.slices.get(&pc).map_or(0, BTreeSet::len);
                    format!("taint: mask={mask:#04b} dist={dist} slice={slice} prio={prio}")
                } else {
                    format!("taint: input-independent prio={prio}")
                };
                notes.entry(pc).or_default().push(note);
            }
            for race in &t.races {
                notes.entry(race.store_pc).or_default().push(format!(
                    "race: store vs load at {:#x} on [{:#x}, {:#x}]",
                    race.load_pc, race.lo, race.hi
                ));
            }
        }

        let mut s = String::new();
        for func in self.cfg.functions.values() {
            if func.entry >= layout::LIB_TEXT_BASE {
                continue; // library listing is noise for bomb triage
            }
            let _ = writeln!(s, "{:#010x} <{}>:", func.entry, func.name);
            for &b in &func.blocks {
                let block = &self.cfg.blocks[&b];
                if b != func.entry {
                    let _ = writeln!(s, "{b:#010x} .L:");
                }
                for &(pc, insn) in &block.insns {
                    let _ = writeln!(s, "    {pc:6x}:  {insn}");
                    for note in notes.get(&pc).into_iter().flatten() {
                        let _ = writeln!(s, "           ; {note}");
                    }
                }
            }
            let _ = writeln!(s);
        }
        for note in notes.get(&0).into_iter().flatten() {
            let _ = writeln!(s, "; {note}");
        }
        let mut preds: Vec<String> = Vec::new();
        for (name, stage) in &self.predictions {
            preds.push(format!("{name}={stage}"));
        }
        let _ = writeln!(s, "; predicted stages: {}", preds.join(" "));
        for &gap in &self.cfg.gaps {
            let _ = writeln!(s, "; {gap:#x}: undecodable — degraded to .byte");
        }
        s
    }

    /// The symbol (or synthesized) name at `addr`.
    #[must_use]
    pub fn name_of(&self, addr: u64) -> String {
        self.code.name_of(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Image {
        let obj = bomblab_isa::asm::assemble(src).expect("test program assembles");
        bomblab_isa::link::Linker::new()
            .add_object(obj)
            .entry_symbol("_start")
            .link()
            .expect("test program links")
    }

    #[test]
    fn analyze_straight_line() {
        let img = build(
            "
            .global _start
            _start:
                li a0, 0
                halt
            ",
        );
        let a = analyze(&img, None);
        assert_eq!(a.cfg.gaps.len(), 0);
        assert!(!a.cfg.blocks.is_empty());
        assert!(a.lints.is_empty());
        for (_, stage) in &a.predictions {
            assert_eq!(*stage, Stage::Solved);
        }
    }

    #[test]
    fn jump_table_resolves_statically() {
        // Classic jump table: clamp an argv-derived index to 0..3, scale
        // by 8, load a code pointer from a table, jump.
        let img = build(
            "
            .data
            .align 8
            table: .quad c0, c1, c2, c3
            .text
            .global _start
            _start:
                ld t0, [a1+8]       # argv[1] pointer
                lbu t1, [t0]        # first byte of the argument
                andi t1, t1, 3
                shli t1, t1, 3
                li t2, table
                add t2, t2, t1
                ld t3, [t2]
                jr t3
            c0: li a0, 0
                halt
            c1: li a0, 1
                halt
            c2: li a0, 2
                halt
            c3: li a0, 3
                halt
            ",
        );
        let a = analyze(&img, None);
        let resolved = a.jr_targets();
        assert_eq!(resolved.len(), 1, "one jr site: {}", a.summary());
        let targets = resolved.values().next().unwrap();
        assert_eq!(targets.len(), 4, "all four arms found: {targets:?}");
        // The jump value was loaded through a tainted index: depth 1.
        assert!(matches!(a.facts.sym_jump_depth, Some(d) if d >= 1));
        // The lint engine flags it.
        assert!(a
            .lints
            .iter()
            .any(|l| matches!(l.kind, LintKind::SymbolicJump { .. })));
    }
}
