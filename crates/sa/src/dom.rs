//! Dominator and post-dominator trees plus natural-loop structure.
//!
//! The forward dominator computation is the iterative Cooper–Harvey–
//! Kennedy algorithm over reverse postorder (the same scheme CFG
//! recovery used inline before this module existed). Post-dominators
//! run the identical algorithm on the reversed graph, rooted at a
//! virtual exit node that collects every block with no successors.
//! Natural loops come from back edges (`u -> v` where `v` dominates
//! `u`); per-block nesting depth counts the distinct loop bodies a
//! block belongs to.

use std::collections::{BTreeMap, BTreeSet};

/// Sentinel for the virtual exit node of the post-dominator tree. No
/// real block can live here: it is not a valid text address.
pub const VIRTUAL_EXIT: u64 = u64::MAX;

/// A dominator (or post-dominator) tree over block start addresses.
#[derive(Debug, Clone, Default)]
pub struct DomTree {
    /// Immediate dominator of each reachable node; the root maps to
    /// itself. Nodes unreachable from the root are absent.
    pub idom: BTreeMap<u64, u64>,
    /// Reverse postorder from the root (the iteration order used).
    pub order: Vec<u64>,
}

impl DomTree {
    /// Whether `a` dominates `b` (reflexively) in this tree.
    #[must_use]
    pub fn dominates(&self, a: u64, b: u64) -> bool {
        let mut d = b;
        loop {
            if d == a {
                return true;
            }
            let Some(&up) = self.idom.get(&d) else {
                return false;
            };
            if up == d {
                return false;
            }
            d = up;
        }
    }
}

/// Computes the dominator tree of the graph reachable from `root`.
/// `succs_of` returns the successor list of a node; successors it does
/// not know must simply be absent from the returned list.
#[must_use]
pub fn dominators(root: u64, succs_of: &dyn Fn(u64) -> Vec<u64>) -> DomTree {
    // Reverse postorder from the root (explicit stack, post-visit marks).
    let mut order = Vec::new();
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut stack = vec![(root, false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            order.push(b);
            continue;
        }
        if !visited.insert(b) {
            continue;
        }
        stack.push((b, true));
        for s in succs_of(b) {
            if !visited.contains(&s) {
                stack.push((s, false));
            }
        }
    }
    order.reverse();
    let index: BTreeMap<u64, usize> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut preds: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &b in &order {
        for s in succs_of(b) {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut idom: BTreeMap<u64, u64> = BTreeMap::new();
    idom.insert(root, root);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new = None;
            for &p in preds.get(&b).into_iter().flatten() {
                if !idom.contains_key(&p) {
                    continue;
                }
                new = Some(match new {
                    None => p,
                    Some(n) => intersect(n, p, &idom, &index),
                });
            }
            if let Some(n) = new {
                if idom.get(&b) != Some(&n) {
                    idom.insert(b, n);
                    changed = true;
                }
            }
        }
    }
    DomTree { idom, order }
}

fn intersect(
    mut a: u64,
    mut b: u64,
    idom: &BTreeMap<u64, u64>,
    index: &BTreeMap<u64, usize>,
) -> u64 {
    while a != b {
        while index.get(&a) > index.get(&b) {
            a = idom[&a];
        }
        while index.get(&b) > index.get(&a) {
            b = idom[&b];
        }
    }
    a
}

/// Computes the post-dominator tree of the graph reachable from `root`,
/// rooted at [`VIRTUAL_EXIT`]. Every reachable node with no successors
/// (a `ret` / `halt` block) gets an edge to the virtual exit; a function
/// whose every path loops forever has no exits, and its post-dominator
/// tree contains only the virtual root.
#[must_use]
pub fn post_dominators(root: u64, succs_of: &dyn Fn(u64) -> Vec<u64>) -> DomTree {
    // Collect the reachable node set and the reversed edges.
    let mut nodes: BTreeSet<u64> = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(b) = stack.pop() {
        if !nodes.insert(b) {
            continue;
        }
        for s in succs_of(b) {
            stack.push(s);
        }
    }
    let mut rev: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut exits: Vec<u64> = Vec::new();
    for &b in &nodes {
        let succs = succs_of(b);
        if succs.is_empty() {
            exits.push(b);
        }
        for s in succs {
            rev.entry(s).or_default().push(b);
        }
    }
    rev.insert(VIRTUAL_EXIT, exits);
    dominators(VIRTUAL_EXIT, &|b| rev.get(&b).cloned().unwrap_or_default())
}

/// Natural-loop structure: headers and per-block nesting depth.
#[derive(Debug, Clone, Default)]
pub struct Loops {
    /// Targets of back edges.
    pub headers: BTreeSet<u64>,
    /// Number of distinct natural-loop bodies containing each block
    /// (blocks outside every loop are absent).
    pub depth: BTreeMap<u64, u32>,
}

/// Finds natural loops from the back edges of `dom`. Loops sharing a
/// header are merged (their bodies union) before depth counting, so a
/// `continue` edge does not double-count nesting.
#[must_use]
pub fn natural_loops(dom: &DomTree, succs_of: &dyn Fn(u64) -> Vec<u64>) -> Loops {
    let mut preds: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &b in &dom.order {
        for s in succs_of(b) {
            preds.entry(s).or_default().push(b);
        }
    }
    // Header -> union of natural-loop bodies for its back edges.
    let mut bodies: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for &u in &dom.order {
        for v in succs_of(u) {
            if !dom.dominates(v, u) {
                continue;
            }
            let body = bodies.entry(v).or_default();
            body.insert(v);
            // Backward walk from the latch, stopping at the header.
            let mut stack = vec![u];
            while let Some(n) = stack.pop() {
                if !body.insert(n) {
                    continue;
                }
                for &p in preds.get(&n).into_iter().flatten() {
                    if !body.contains(&p) {
                        stack.push(p);
                    }
                }
            }
        }
    }
    let mut loops = Loops::default();
    for (&header, body) in &bodies {
        loops.headers.insert(header);
        for &b in body {
            *loops.depth.entry(b).or_insert(0) += 1;
        }
    }
    loops
}

/// Naive all-paths reference: `Dom(n) = {n} ∪ ⋂ Dom(pred(n))`, iterated
/// to fixpoint over explicit dominator *sets*. Quadratic and only for
/// validating [`dominators`] in property tests.
#[must_use]
pub fn naive_dominators(
    root: u64,
    succs_of: &dyn Fn(u64) -> Vec<u64>,
) -> BTreeMap<u64, BTreeSet<u64>> {
    let mut nodes: BTreeSet<u64> = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(b) = stack.pop() {
        if !nodes.insert(b) {
            continue;
        }
        for s in succs_of(b) {
            stack.push(s);
        }
    }
    let mut preds: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &b in &nodes {
        for s in succs_of(b) {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut dom: BTreeMap<u64, BTreeSet<u64>> = nodes
        .iter()
        .map(|&n| {
            if n == root {
                (n, [n].into_iter().collect())
            } else {
                (n, nodes.clone())
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &n in &nodes {
            if n == root {
                continue;
            }
            let mut new: Option<BTreeSet<u64>> = None;
            for &p in preds.get(&n).into_iter().flatten() {
                let pd = &dom[&p];
                new = Some(match new {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(n);
            if dom[&n] != new {
                dom.insert(n, new);
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u64, u64)]) -> BTreeMap<u64, Vec<u64>> {
        let mut g: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(a, b) in edges {
            g.entry(a).or_default().push(b);
            g.entry(b).or_default();
        }
        g
    }

    #[test]
    fn diamond_dominators_and_postdominators() {
        // 1 -> {2, 3} -> 4
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let succs = |b: u64| g.get(&b).cloned().unwrap_or_default();
        let dom = dominators(1, &succs);
        assert_eq!(dom.idom[&4], 1, "join dominated by the fork, not an arm");
        assert!(dom.dominates(1, 4) && !dom.dominates(2, 4));
        let pdom = post_dominators(1, &succs);
        assert_eq!(pdom.idom[&1], 4, "the join post-dominates the fork");
        assert!(pdom.dominates(4, 2));
    }

    #[test]
    fn nested_loops_have_depth_two() {
        // 1 -> 2 -> 3 -> 2 (inner), 3 -> 1 (outer via back edge to 1), 3 -> 4.
        let g = graph(&[(1, 2), (2, 3), (3, 2), (3, 1), (3, 4)]);
        let succs = |b: u64| g.get(&b).cloned().unwrap_or_default();
        let dom = dominators(1, &succs);
        let loops = natural_loops(&dom, &succs);
        assert!(loops.headers.contains(&1) && loops.headers.contains(&2));
        assert_eq!(loops.depth.get(&3), Some(&2), "inner block in both loops");
        assert_eq!(loops.depth.get(&4), None, "exit outside every loop");
    }

    #[test]
    fn chk_agrees_with_naive_reference_on_irreducible_graph() {
        // Irreducible: two entries into the {3,4} cycle.
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4), (4, 3), (4, 5)]);
        let succs = |b: u64| g.get(&b).cloned().unwrap_or_default();
        let fast = dominators(1, &succs);
        let naive = naive_dominators(1, &succs);
        for (&n, doms) in &naive {
            for &d in doms {
                assert!(fast.dominates(d, n), "naive says {d} dom {n}");
            }
            // And the idom chain is a subset of the naive set.
            let mut c = n;
            loop {
                assert!(doms.contains(&c), "fast chain node {c} not in naive({n})");
                let up = fast.idom[&c];
                if up == c {
                    break;
                }
                c = up;
            }
        }
    }
}
