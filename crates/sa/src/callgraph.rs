//! Call-graph construction and interprocedural reachability.
//!
//! Nodes are function entry addresses from CFG recovery; edges come from
//! the direct-call edges the recursive descent recorded. Indirect calls
//! (`callr`) have no static callee here — the data-flow layer treats
//! them conservatively instead of guessing edges.

use crate::cfg::Cfg;
use std::collections::{BTreeMap, BTreeSet};

/// The program call graph over recovered function entries.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Caller entry -> callee entries (direct calls only).
    pub callees: BTreeMap<u64, BTreeSet<u64>>,
    /// Callee entry -> caller entries (the reverse edges).
    pub callers: BTreeMap<u64, BTreeSet<u64>>,
}

impl CallGraph {
    /// Builds the graph from the CFG's recorded call edges, keeping only
    /// edges whose callee was actually recovered as a function.
    #[must_use]
    pub fn build(cfg: &Cfg) -> CallGraph {
        let mut g = CallGraph::default();
        for f in cfg.functions.keys() {
            g.callees.entry(*f).or_default();
            g.callers.entry(*f).or_default();
        }
        for &(caller, callee) in &cfg.call_edges {
            if !cfg.functions.contains_key(&callee) {
                continue;
            }
            g.callees.entry(caller).or_default().insert(callee);
            g.callers.entry(callee).or_default().insert(caller);
        }
        g
    }

    /// Function entries transitively reachable from `roots` (inclusive)
    /// along call edges.
    #[must_use]
    pub fn reachable_from(&self, roots: &[u64]) -> BTreeSet<u64> {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut stack: Vec<u64> = roots.to_vec();
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            for &c in self.callees.get(&f).into_iter().flatten() {
                if !seen.contains(&c) {
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Functions that can (transitively) call into any of `targets` —
    /// the backward closure along caller edges, inclusive.
    #[must_use]
    pub fn can_reach(&self, targets: &[u64]) -> BTreeSet<u64> {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut stack: Vec<u64> = targets.to_vec();
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            for &c in self.callers.get(&f).into_iter().flatten() {
                if !seen.contains(&c) {
                    stack.push(c);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, Function};
    use std::collections::BTreeMap;

    fn cfg_with(edges: &[(u64, u64)]) -> Cfg {
        let mut cfg = Cfg::default();
        for &(a, b) in edges {
            for e in [a, b] {
                cfg.functions.entry(e).or_insert_with(|| Function {
                    entry: e,
                    name: format!("f{e}"),
                    blocks: vec![e],
                    idom: BTreeMap::new(),
                    post_idom: BTreeMap::new(),
                    loop_headers: Default::default(),
                    loop_depth: BTreeMap::new(),
                });
            }
            cfg.call_edges.insert((a, b));
        }
        cfg
    }

    #[test]
    fn reachability_follows_call_chains_both_ways() {
        // 1 -> 2 -> 3, 4 -> 3; 5 isolated.
        let mut cfg = cfg_with(&[(1, 2), (2, 3), (4, 3)]);
        cfg.functions.entry(5).or_insert_with(|| Function {
            entry: 5,
            name: "f5".into(),
            blocks: vec![5],
            idom: BTreeMap::new(),
            post_idom: BTreeMap::new(),
            loop_headers: Default::default(),
            loop_depth: BTreeMap::new(),
        });
        let g = CallGraph::build(&cfg);
        let fwd = g.reachable_from(&[1]);
        assert_eq!(fwd, [1, 2, 3].into_iter().collect());
        let back = g.can_reach(&[3]);
        assert_eq!(back, [1, 2, 3, 4].into_iter().collect());
        assert!(!g.reachable_from(&[5]).contains(&3));
    }
}
