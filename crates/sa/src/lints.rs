//! Challenge lints: typed diagnostics, one family per challenge class the
//! paper identifies in small binaries, plus a per-tool failure-stage
//! predictor.
//!
//! A [`Lint`] marks a program feature (floating point, a symbolic jump, a
//! covert channel, …) at a code address. For each [`Capabilities`] profile
//! the engine predicts the [`Stage`] at which a concolic tool with those
//! capabilities would fail on the bomb — before ever executing it. The
//! prediction logic deliberately mirrors the dynamic study's diagnosis
//! rules (`Engine::diagnose` in the core crate) so that the static and
//! dynamic verdicts can be compared cell by cell.

use std::collections::BTreeSet;
use std::fmt;

/// Predicted (or observed) outcome stage, ordered from success to
/// hard failure. Matches the paper's error-stage taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The tool is expected to crack the bomb.
    Solved,
    /// Es0: no symbolic flow ever reaches a branch (missing taint source).
    Es0,
    /// Es1: instruction lifting fails on a relevant instruction.
    Es1,
    /// Es2: symbolic flows are dropped before reaching the target branch.
    Es2,
    /// Es3: flows arrive but the solver cannot produce a usable model.
    Es3,
    /// E: the tool aborts abnormally (crash, unsupported syscall, budget).
    Abnormal,
    /// P: partially cracked — a model exists but the world rejects it.
    Partial,
}

impl Stage {
    /// Short table glyph, matching the dynamic study's rendering.
    #[must_use]
    pub fn glyph(self) -> &'static str {
        match self {
            Stage::Solved => "OK",
            Stage::Es0 => "Es0",
            Stage::Es1 => "Es1",
            Stage::Es2 => "Es2",
            Stage::Es3 => "Es3",
            Stage::Abnormal => "E",
            Stage::Partial => "P",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.glyph())
    }
}

/// How a profile reacts to a hardware trap (division by zero) on the
/// analyzed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapModel {
    /// The faulting instruction itself fails to lift.
    MissingLift,
    /// The tool crashes when the trap fires.
    Crash,
    /// The trap edge is skipped; flows through the handler are lost.
    Skip,
    /// Trap control flow is followed faithfully.
    Follow,
}

/// Trace-based instrumentation vs full-system emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Replays concrete traces (a symbolic jump ends the trace).
    Trace,
    /// Emulates and can fork on indirect-jump target sets.
    Emulation,
}

/// A capability profile of a concolic executor, the static analogue of
/// the dynamic study's tool profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Display name.
    pub name: String,
    /// Lifts stack push/pop effects into the IR.
    pub lifts_stack: bool,
    /// Lifts floating-point arithmetic.
    pub lifts_fp_arith: bool,
    /// Lifts int↔float conversions.
    pub lifts_fp_convert: bool,
    /// Lifts floating-point compare-and-branch.
    pub lifts_fp_branch: bool,
    /// The solver backend accepts floating-point constraints.
    pub float_solver: bool,
    /// Reaction to traps on the path.
    pub trap_model: TrapModel,
    /// Symbolic-address indirection levels modeled (0 = concretize).
    pub max_indirection: u8,
    /// The argv model can vary argument length.
    pub argv_variable: bool,
    /// Environment interactions become constraints rather than halts.
    pub models_env_as_constraints: bool,
    /// Shared libraries are loaded and analyzed.
    pub loads_dyn_libs: bool,
    /// Unmodeled syscall returns become unconstrained symbols (simulation).
    pub sim_sys_returns: bool,
    /// Skipped library calls return opaque fresh symbols.
    pub opaque_lib_returns: bool,
    /// Execution follows spawned threads.
    pub follows_threads: bool,
    /// Taint/symbols survive across threads.
    pub sym_across_threads: bool,
    /// Execution follows forked children.
    pub follows_forks: bool,
    /// Symbolic data survives a write-to-file / read-back round trip
    /// (and kernel state such as file offsets stays modeled).
    pub tracks_files: bool,
    /// Symbolic data survives transit through a pipe.
    pub tracks_pipes: bool,
    /// Syscall numbers with no handler at all (tool aborts).
    pub unsupported_syscalls: Vec<u64>,
    /// Trace-based or emulation-based exploration.
    pub style: Style,
    /// Small solver budget: long crypto constraint chains blow it.
    pub small_solver_budget: bool,
    /// The solver *aborts* on float constraints instead of dropping them.
    pub float_crash: bool,
    /// A simulated filesystem models file contents symbolically (and
    /// explodes on symbolic round trips).
    pub sim_fs: bool,
}

/// Library routines the emulation-based tools model natively (the
/// SimProcedure set): calls into these survive even when the library
/// itself is not loaded.
pub const MODELED_LIB_ROUTINES: [&str; 14] = [
    "bomb_boom",
    "strlen",
    "strcmp",
    "strcpy",
    "memcpy",
    "memset",
    "atoi",
    "putchar",
    "print_str",
    "puts",
    "print_u64",
    "print_i64",
    "print_hex",
    "printf",
];

impl Capabilities {
    /// The four paper-tool profiles, in the study's column order.
    #[must_use]
    pub fn paper_profiles() -> Vec<Capabilities> {
        use bomblab_isa::sys;
        let base = Capabilities {
            name: String::new(),
            lifts_stack: true,
            lifts_fp_arith: true,
            lifts_fp_convert: true,
            lifts_fp_branch: true,
            float_solver: false,
            trap_model: TrapModel::Follow,
            max_indirection: 0,
            argv_variable: false,
            models_env_as_constraints: false,
            loads_dyn_libs: true,
            sim_sys_returns: false,
            opaque_lib_returns: false,
            follows_threads: false,
            sym_across_threads: false,
            follows_forks: false,
            tracks_files: false,
            tracks_pipes: false,
            unsupported_syscalls: Vec::new(),
            style: Style::Trace,
            small_solver_budget: true,
            float_crash: false,
            sim_fs: false,
        };
        vec![
            Capabilities {
                name: "bap".into(),
                lifts_stack: false,
                lifts_fp_arith: false,
                lifts_fp_convert: false,
                lifts_fp_branch: false,
                follows_threads: true,
                sym_across_threads: true,
                ..base.clone()
            },
            Capabilities {
                name: "triton".into(),
                lifts_fp_convert: false,
                lifts_fp_branch: false,
                trap_model: TrapModel::MissingLift,
                models_env_as_constraints: true,
                ..base.clone()
            },
            Capabilities {
                name: "angr".into(),
                trap_model: TrapModel::Crash,
                max_indirection: 1,
                argv_variable: true,
                sim_sys_returns: true,
                unsupported_syscalls: vec![sys::NET_GET],
                style: Style::Emulation,
                float_crash: true,
                sim_fs: true,
                ..base.clone()
            },
            Capabilities {
                name: "angr-nolib".into(),
                trap_model: TrapModel::Skip,
                max_indirection: 1,
                argv_variable: true,
                sim_sys_returns: true,
                opaque_lib_returns: true,
                loads_dyn_libs: false,
                follows_forks: true,
                tracks_pipes: true,
                unsupported_syscalls: vec![sys::NET_GET],
                style: Style::Emulation,
                ..base
            },
        ]
    }
}

/// The challenge family a lint belongs to; one variant per class of
/// obstacle the paper studies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintKind {
    /// Input reaches floating-point computation.
    FloatOps {
        /// An int↔float conversion sits on the flow.
        convert: bool,
        /// All FP code lives in the shared library.
        lib_only: bool,
    },
    /// `jr` on an input-derived value.
    SymbolicJump {
        /// Indirection depth of the jump value (0 = computed directly).
        depth: u8,
        /// Number of statically resolved targets (0 = unresolved).
        targets: usize,
    },
    /// Memory load at an input-derived address.
    SymbolicIndexMemory {
        /// Deepest tainted-address load chain.
        depth: u8,
    },
    /// Input written to a file and read back.
    CovertFile,
    /// Input round-trips through kernel state (file offsets via `lseek`).
    CovertKernelState,
    /// Input propagates through a trap handler (e.g. division by zero).
    CovertException,
    /// Input pushed through stack slots (lost without stack lifting).
    StackPropagation,
    /// Input crosses a `fork` (typically via a pipe).
    ParallelFork,
    /// Input crosses a spawned thread.
    ParallelThread,
    /// Input flows through an external library function.
    ExternalCall {
        /// Callee symbol.
        name: String,
    },
    /// Budget-blowing cryptographic loop on the input path.
    CryptoLoop {
        /// Callee symbol (`sha1`, `aes128_encrypt`, …).
        name: String,
        /// The routine lives in the shared library.
        in_lib: bool,
    },
    /// A syscall argument or number is input-dependent (contextual value).
    ContextualValue {
        /// The syscall *number* itself is input-derived.
        syscall_number: bool,
    },
    /// Branches depend on an environment source the profile cannot taint.
    MissingSource {
        /// Which source (`time`, `uid`, `net`).
        source: String,
    },
    /// A branch compares the *length* of an argv string.
    ArgvLength,
    /// A division whose divisor is input-derived may trap.
    TrapDivision,
    /// A static store/load pair on overlapping addresses where one side
    /// runs in thread-reachable code (informational — not a challenge
    /// family, so it never moves a stage prediction).
    SharedMemRace {
        /// The racing load's address.
        load_pc: u64,
    },
}

impl LintKind {
    /// Stable short code for reports.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            LintKind::FloatOps { .. } => "float-ops",
            LintKind::SymbolicJump { .. } => "symbolic-jump",
            LintKind::SymbolicIndexMemory { .. } => "symbolic-index",
            LintKind::CovertFile => "covert-file",
            LintKind::CovertKernelState => "covert-kernel-state",
            LintKind::CovertException => "covert-exception",
            LintKind::StackPropagation => "stack-propagation",
            LintKind::ParallelFork => "parallel-fork",
            LintKind::ParallelThread => "parallel-thread",
            LintKind::ExternalCall { .. } => "external-call",
            LintKind::CryptoLoop { .. } => "crypto-loop",
            LintKind::ContextualValue { .. } => "contextual-value",
            LintKind::MissingSource { .. } => "missing-source",
            LintKind::ArgvLength => "argv-length",
            LintKind::TrapDivision => "trap-division",
            LintKind::SharedMemRace { .. } => "shared-mem-race",
        }
    }
}

/// One diagnostic: a challenge feature at an address, with the stage each
/// capability profile is predicted to reach because of it.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Challenge family.
    pub kind: LintKind,
    /// Anchoring address (0 when the lint is whole-program).
    pub pc: u64,
    /// Human-readable one-liner.
    pub detail: String,
    /// Per-profile predicted stage attributable to this lint alone
    /// (`Solved` = this profile handles the feature).
    pub stages: Vec<(String, Stage)>,
}

/// Whole-bomb facts distilled from CFG recovery and value-set analysis;
/// the input to lint generation and stage prediction.
#[derive(Debug, Clone, Default)]
pub struct Facts {
    /// Input reaches floating point.
    pub has_float: bool,
    /// An int↔float conversion is on the flow.
    pub fp_convert: bool,
    /// A float compare-and-branch is on the flow.
    pub fp_branch: bool,
    /// Every FP instruction on the flow lives in library text.
    pub float_lib_only: bool,
    /// Deepest tainted-address load chain (whole image).
    pub max_indirection: u8,
    /// Same, restricted to executable (non-library) text.
    pub max_indirection_exe: u8,
    /// Max taint depth over `jr` values, when some `jr` is input-derived.
    pub sym_jump_depth: Option<u8>,
    /// Resolved target count of the deepest tainted `jr`.
    pub sym_jump_targets: usize,
    /// A trap handler is installed and a tainted division may fault.
    pub trap_flow: bool,
    /// All syscall numbers that can reach a `sys`.
    pub sys_nums: BTreeSet<u64>,
    /// A syscall *number* is input-derived.
    pub ctx_sysnum: bool,
    /// A syscall argument (filename pointer) is input-derived.
    pub ctx_filename: bool,
    /// Some branch depends on an environment-sourced value.
    pub env_branch: bool,
    /// Some branch depends on an argv-sourced value.
    pub argv_branch: bool,
    /// Input round-trips through a file.
    pub covert_file: bool,
    /// A branch checks a file-descriptor syscall return against −1: the
    /// covert path is guarded by error handling.
    pub open_error_branch: bool,
    /// Input round-trips through kernel state (`lseek`).
    pub covert_kernel: bool,
    /// The bomb forks (with pipes or wait status carrying data).
    pub uses_forks: bool,
    /// The bomb spawns threads.
    pub uses_threads: bool,
    /// A tainted value is pushed onto the stack.
    pub tainted_push: bool,
    /// Library routines called with tainted arguments.
    pub tainted_lib_calls: BTreeSet<String>,
    /// Budget-blowing crypto callee on the input path, if any.
    pub crypto: Option<(String, bool)>,
    /// Branch compares an argv string's length (`strlen` return).
    pub argv_len_branch: bool,
    /// Branch depends on `time` / `getuid` / `net_get` returns.
    pub needs_time: bool,
    /// See [`Facts::needs_time`].
    pub needs_uid: bool,
    /// See [`Facts::needs_time`].
    pub needs_net: bool,
}

impl Facts {
    fn indirection_visible(&self, c: &Capabilities) -> u8 {
        if c.loads_dyn_libs {
            self.max_indirection
        } else {
            self.max_indirection_exe
        }
    }

    fn float_visible(&self, c: &Capabilities) -> bool {
        self.has_float && (c.loads_dyn_libs || !self.float_lib_only)
    }

    fn crypto_visible(&self, c: &Capabilities) -> Option<&str> {
        match &self.crypto {
            Some((name, in_lib)) if c.loads_dyn_libs || !in_lib => Some(name),
            _ => None,
        }
    }

    fn lift_gap(&self, c: &Capabilities) -> bool {
        (self.tainted_push && !c.lifts_stack)
            || (self.float_visible(c)
                && ((self.fp_convert && !c.lifts_fp_convert)
                    || (self.fp_branch && !c.lifts_fp_branch)
                    || !c.lifts_fp_arith))
    }

    fn covert_lost(&self, c: &Capabilities) -> bool {
        (self.uses_forks && !(c.follows_forks && c.tracks_pipes))
            || (self.uses_threads && !(c.follows_threads && c.sym_across_threads))
            || (self.covert_file && !c.tracks_files)
            || (self.covert_kernel && !c.tracks_files)
    }

    /// Tainted library calls beyond the natively modeled routine set:
    /// the ones an unloaded/opaque library loses.
    fn unmodeled_lib_calls(&self) -> impl Iterator<Item = &String> {
        self.tainted_lib_calls
            .iter()
            .filter(|n| !MODELED_LIB_ROUTINES.contains(&n.as_str()))
    }

    /// Kernel-state syscalls whose returns the program branches on and
    /// whose simulation yields world-refusable models (uid, file offset).
    fn env_ret_branch(&self) -> bool {
        use bomblab_isa::sys;
        self.env_branch
            && [sys::GETUID, sys::LSEEK]
                .iter()
                .any(|n| self.sys_nums.contains(n))
    }
}

impl Capabilities {
    /// Whether environment sources (time, uid, net) are taint sources.
    /// None of the paper profiles taint anything but argv.
    #[must_use]
    pub fn models_all_sources(&self) -> bool {
        false
    }
}

/// Predicts the stage a tool with capabilities `c` reaches on a bomb with
/// facts `f`. Rule order mirrors the dynamic diagnosis priority: hard
/// aborts and lifting failures hit first, then source gaps, then dropped
/// flows, then solver-stage failures.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn predict(f: &Facts, c: &Capabilities) -> Stage {
    // 1. Deep symbolic-index chains starve the solver before anything else.
    let ind = f.indirection_visible(c);
    if ind >= 3 && ind > c.max_indirection {
        return Stage::Es2;
    }
    // 2. A syscall with no handler aborts the run.
    if f.sys_nums
        .iter()
        .any(|n| c.unsupported_syscalls.contains(n))
    {
        return Stage::Abnormal;
    }
    // 3. Crypto constraint chains blow small solver budgets. Exception:
    //    an LCG's state round-trips through a static cell, which purely
    //    trace-based taint drops before the solver ever sees it.
    if let Some(name) = f.crypto_visible(c) {
        if c.small_solver_budget {
            let lcg = name == "srand" || name == "rand";
            if lcg && c.style == Style::Trace && !c.models_env_as_constraints {
                return Stage::Es2;
            }
            return Stage::Abnormal;
        }
    }
    // 4. Lifting gaps hit before any symbolic reasoning.
    if f.lift_gap(c) {
        return Stage::Es1;
    }
    // 5. Traps on the path.
    if f.trap_flow {
        match c.trap_model {
            TrapModel::MissingLift => return Stage::Es1,
            TrapModel::Crash => return Stage::Abnormal,
            TrapModel::Skip => return Stage::Es2,
            TrapModel::Follow => {}
        }
    }
    // 6. Branches on environment sources the tool never taints. Time is
    //    simulated concretely (a clock) even under simulation — Es0; a
    //    simulated uid is an unconstrained symbol whose model the real
    //    world then refuses — Partial.
    if !c.models_all_sources() {
        if f.needs_net || f.needs_time {
            return Stage::Es0;
        }
        if f.needs_uid {
            return if c.sim_sys_returns {
                Stage::Partial
            } else {
                Stage::Es0
            };
        }
    }
    // 7. Calls into an unloaded/opaque library (beyond the natively
    //    modeled routines) detach the flow from the input.
    if (c.opaque_lib_returns || !c.loads_dyn_libs) && f.unmodeled_lib_calls().next().is_some() {
        return Stage::Es2;
    }
    // 8. Floating-point constraints the solver rejects (or chokes on).
    if f.float_visible(c) && !c.float_solver {
        return if c.float_crash {
            Stage::Abnormal
        } else {
            Stage::Es3
        };
    }
    // 9. Simulated kernel-state returns produce models the world rejects.
    if c.sim_sys_returns && f.env_ret_branch() {
        return Stage::Partial;
    }
    // 10. A symbolic file round trip under a simulated filesystem
    //     explodes; behind an error-handling guard the sim never takes
    //     the covert path at all (plain dropped flow, rule 11).
    if c.sim_fs && f.covert_file && !f.open_error_branch {
        return Stage::Abnormal;
    }
    // 11. Covert propagation channels the tool does not track.
    if f.covert_lost(c) {
        return Stage::Es2;
    }
    // 12. Contextual values (input-dependent syscall numbers / filenames).
    if f.ctx_sysnum || f.ctx_filename {
        return if c.models_env_as_constraints {
            Stage::Es3
        } else {
            Stage::Es2
        };
    }
    // 13. Shallow symbolic-index memory beyond the tool's model.
    if ind > c.max_indirection {
        return Stage::Es3;
    }
    // 14. Symbolic jumps: a loaded jump target (depth ≥ 1) defeats every
    //     profile; a directly computed one only ends trace-based tools.
    if let Some(depth) = f.sym_jump_depth {
        if depth >= 1 {
            return Stage::Es3;
        }
        return match c.style {
            Style::Trace => Stage::Es3,
            Style::Emulation => Stage::Es2,
        };
    }
    // 15. Length-dependent argv comparisons under a fixed argv model.
    if f.argv_len_branch && !c.argv_variable {
        return if c.models_env_as_constraints {
            Stage::Es0
        } else {
            Stage::Es2
        };
    }
    Stage::Solved
}

/// Derives the lint list from the facts, with per-profile stages.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lints(f: &Facts, anchors: &Anchors, profiles: &[Capabilities]) -> Vec<Lint> {
    let mut out = Vec::new();
    let mut push =
        |kind: LintKind, pc: u64, detail: String, stage_of: &dyn Fn(&Capabilities) -> Stage| {
            let stages = profiles
                .iter()
                .map(|c| (c.name.clone(), stage_of(c)))
                .collect();
            out.push(Lint {
                kind,
                pc,
                detail,
                stages,
            });
        };

    if f.has_float {
        let (convert, lib_only) = (f.fp_convert, f.float_lib_only);
        push(
            LintKind::FloatOps { convert, lib_only },
            anchors.float_pc,
            format!(
                "input reaches floating-point code{}",
                if lib_only { " (library only)" } else { "" }
            ),
            &|c| {
                if !f.float_visible(c) {
                    Stage::Solved
                } else if f.lift_gap(c)
                    && (!c.lifts_fp_arith || !c.lifts_fp_convert || !c.lifts_fp_branch)
                {
                    Stage::Es1
                } else if c.float_solver {
                    Stage::Solved
                } else if c.float_crash {
                    Stage::Abnormal
                } else {
                    Stage::Es3
                }
            },
        );
    }
    if let Some(depth) = f.sym_jump_depth {
        push(
            LintKind::SymbolicJump {
                depth,
                targets: f.sym_jump_targets,
            },
            anchors.jr_pc,
            format!(
                "indirect jump on input-derived value (depth {depth}, {} static targets)",
                f.sym_jump_targets
            ),
            &|c| {
                if depth >= 1 {
                    Stage::Es3
                } else {
                    match c.style {
                        Style::Trace => Stage::Es3,
                        Style::Emulation => Stage::Es2,
                    }
                }
            },
        );
    }
    if f.max_indirection > 0 {
        let depth = f.max_indirection;
        push(
            LintKind::SymbolicIndexMemory { depth },
            anchors.load_pc,
            format!("memory load at input-derived address (depth {depth})"),
            &|c| {
                let d = f.indirection_visible(c);
                if d == 0 || d <= c.max_indirection {
                    Stage::Solved
                } else if d >= 3 {
                    Stage::Es2
                } else {
                    Stage::Es3
                }
            },
        );
    }
    if f.covert_file {
        push(
            LintKind::CovertFile,
            0,
            "input written to a file and read back".into(),
            &|c| {
                if c.tracks_files {
                    Stage::Solved
                } else if c.sim_fs && !f.open_error_branch {
                    Stage::Abnormal
                } else {
                    Stage::Es2
                }
            },
        );
    }
    if f.covert_kernel {
        push(
            LintKind::CovertKernelState,
            0,
            "input round-trips through kernel state (lseek offsets)".into(),
            &|c| {
                if c.tracks_files {
                    Stage::Solved
                } else if c.sim_sys_returns {
                    Stage::Partial
                } else {
                    Stage::Es2
                }
            },
        );
    }
    if f.trap_flow {
        push(
            LintKind::CovertException,
            anchors.div_pc,
            "input propagates through a trap handler".into(),
            &|c| match c.trap_model {
                TrapModel::MissingLift => Stage::Es1,
                TrapModel::Crash => Stage::Abnormal,
                TrapModel::Skip => Stage::Es2,
                TrapModel::Follow => Stage::Solved,
            },
        );
    } else if !anchors.div_sites.is_empty() {
        push(
            LintKind::TrapDivision,
            anchors.div_pc,
            "division with input-derived divisor may trap".into(),
            &|c| match c.trap_model {
                TrapModel::MissingLift => Stage::Es1,
                TrapModel::Crash => Stage::Abnormal,
                _ => Stage::Solved,
            },
        );
    }
    if f.tainted_push {
        push(
            LintKind::StackPropagation,
            anchors.push_pc,
            "input propagates through push/pop stack slots".into(),
            &|c| {
                if c.lifts_stack {
                    Stage::Solved
                } else {
                    Stage::Es1
                }
            },
        );
    }
    if f.uses_forks {
        push(
            LintKind::ParallelFork,
            0,
            "input crosses a fork (pipe / wait status)".into(),
            &|c| {
                if c.follows_forks && c.tracks_pipes {
                    Stage::Solved
                } else {
                    Stage::Es2
                }
            },
        );
    }
    if f.uses_threads {
        push(
            LintKind::ParallelThread,
            0,
            "input crosses a spawned thread".into(),
            &|c| {
                if c.follows_threads && c.sym_across_threads {
                    Stage::Solved
                } else {
                    Stage::Es2
                }
            },
        );
    }
    if let Some((name, in_lib)) = &f.crypto {
        push(
            LintKind::CryptoLoop {
                name: name.clone(),
                in_lib: *in_lib,
            },
            0,
            format!("budget-blowing crypto routine `{name}` on the input path"),
            &|c| {
                if f.crypto_visible(c).is_none() {
                    Stage::Es2 // flows vanish into the unloaded library
                } else if c.small_solver_budget {
                    let lcg = name == "srand" || name == "rand";
                    if lcg && c.style == Style::Trace && !c.models_env_as_constraints {
                        Stage::Es2
                    } else {
                        Stage::Abnormal
                    }
                } else {
                    Stage::Solved
                }
            },
        );
    }
    for name in &f.tainted_lib_calls {
        if f.crypto.as_ref().is_some_and(|(n, _)| n == name) {
            continue;
        }
        let modeled = MODELED_LIB_ROUTINES.contains(&name.as_str());
        push(
            LintKind::ExternalCall { name: name.clone() },
            0,
            format!("input flows through library routine `{name}`"),
            &|c| {
                if (c.loads_dyn_libs && !c.opaque_lib_returns) || modeled {
                    Stage::Solved
                } else {
                    Stage::Es2
                }
            },
        );
    }
    if f.ctx_sysnum || f.ctx_filename {
        push(
            LintKind::ContextualValue {
                syscall_number: f.ctx_sysnum,
            },
            anchors.sys_pc,
            if f.ctx_sysnum {
                "syscall number is input-derived".into()
            } else {
                "syscall argument (filename) is input-derived".into()
            },
            &|c| {
                if c.models_env_as_constraints {
                    Stage::Es3
                } else {
                    Stage::Es2
                }
            },
        );
    }
    for (flag, source) in [
        (f.needs_time, "time"),
        (f.needs_uid, "uid"),
        (f.needs_net, "net"),
    ] {
        if flag {
            push(
                LintKind::MissingSource {
                    source: source.into(),
                },
                anchors.sys_pc,
                format!("branches depend on environment source `{source}`"),
                &|c| {
                    if c.models_all_sources() {
                        Stage::Solved
                    } else if c.sim_sys_returns {
                        Stage::Partial
                    } else {
                        Stage::Es0
                    }
                },
            );
        }
    }
    if f.argv_len_branch {
        push(
            LintKind::ArgvLength,
            0,
            "branch compares an argv string's length".into(),
            &|c| {
                if c.argv_variable {
                    Stage::Solved
                } else if c.models_env_as_constraints {
                    Stage::Es0
                } else {
                    Stage::Es2
                }
            },
        );
    }
    out
}

/// Code addresses anchoring whole-program lints, for the annotated listing.
#[derive(Debug, Clone, Default)]
pub struct Anchors {
    /// First FP instruction on a tainted flow.
    pub float_pc: u64,
    /// Deepest tainted `jr` site.
    pub jr_pc: u64,
    /// Deepest tainted load site.
    pub load_pc: u64,
    /// First tainted division site.
    pub div_pc: u64,
    /// All tainted division sites.
    pub div_sites: BTreeSet<u64>,
    /// First tainted push site.
    pub push_pc: u64,
    /// Representative `sys` site.
    pub sys_pc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<Capabilities> {
        Capabilities::paper_profiles()
    }

    fn by_name(name: &str) -> Capabilities {
        profiles().into_iter().find(|c| c.name == name).unwrap()
    }

    #[test]
    fn float_bomb_predictions() {
        let f = Facts {
            has_float: true,
            fp_convert: true,
            fp_branch: true,
            argv_branch: true,
            ..Facts::default()
        };
        // Lifting gap dominates for trace tools missing FP lifters.
        assert_eq!(predict(&f, &by_name("bap")), Stage::Es1);
        assert_eq!(predict(&f, &by_name("triton")), Stage::Es1);
        // Full lifting, but the float-rejecting solver backend crashes.
        assert_eq!(predict(&f, &by_name("angr")), Stage::Abnormal);
    }

    #[test]
    fn deep_indirection_dominates() {
        let f = Facts {
            max_indirection: 4,
            max_indirection_exe: 4,
            argv_branch: true,
            ..Facts::default()
        };
        for c in profiles() {
            assert_eq!(predict(&f, &c), Stage::Es2, "{}", c.name);
        }
    }

    #[test]
    fn fork_bomb_lost_without_fork_following() {
        let f = Facts {
            uses_forks: true,
            env_branch: true,
            argv_branch: true,
            sys_nums: [bomblab_isa::sys::FORK, bomblab_isa::sys::PIPE]
                .into_iter()
                .collect(),
            ..Facts::default()
        };
        assert_eq!(predict(&f, &by_name("bap")), Stage::Es2);
        assert_eq!(predict(&f, &by_name("angr")), Stage::Es2);
        // angr-nolib follows forks and tracks pipes: the flow survives.
        assert_eq!(predict(&f, &by_name("angr-nolib")), Stage::Solved);
    }

    #[test]
    fn plain_bomb_solved_everywhere() {
        let f = Facts {
            argv_branch: true,
            ..Facts::default()
        };
        for c in profiles() {
            assert_eq!(predict(&f, &c), Stage::Solved, "{}", c.name);
        }
    }
}
