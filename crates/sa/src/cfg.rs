//! Control-flow-graph recovery by recursive descent.
//!
//! Disassembly starts from the image entry point and every symbol that
//! points into a text segment, follows fall-through and branch edges, and
//! treats every `call` target as a new function root. Bytes that fail to
//! decode degrade to `.byte` gaps: the address is recorded and the path
//! stops, exactly like the disassembler's one-byte fallback — recursive
//! descent never plows through data.
//!
//! `jr` (register-indirect jump) sites get their successor sets from a
//! previous value-set-analysis round via [`CfgInput::jr_targets`]; on the
//! first round they have none and are recorded as unresolved.

use crate::code::CodeMap;
use crate::dom;
use bomblab_isa::{Insn, InsnClass};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A basic block: straight-line instructions ending at a terminator or
/// just before another block's leader.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u64,
    /// Address one past the last instruction's final byte.
    pub end: u64,
    /// Decoded instructions, in address order.
    pub insns: Vec<(u64, Insn)>,
    /// Successor block start addresses (within the same function).
    pub succs: Vec<u64>,
}

/// A recovered function: the blocks reachable from one call target.
#[derive(Debug, Clone)]
pub struct Function {
    /// Entry address (call target or root symbol).
    pub entry: u64,
    /// Best-effort name from the symbol tables.
    pub name: String,
    /// Start addresses of the member blocks, sorted.
    pub blocks: Vec<u64>,
    /// Immediate dominator of each block (entry maps to itself).
    pub idom: BTreeMap<u64, u64>,
    /// Immediate post-dominator of each block; [`dom::VIRTUAL_EXIT`]
    /// is the tree root collecting every `ret`/`halt` block.
    pub post_idom: BTreeMap<u64, u64>,
    /// Headers of natural loops (targets of back edges).
    pub loop_headers: BTreeSet<u64>,
    /// Natural-loop nesting depth per block (absent = outside loops).
    pub loop_depth: BTreeMap<u64, u32>,
}

/// Inputs that refine recovery across analysis rounds.
#[derive(Debug, Default, Clone)]
pub struct CfgInput {
    /// Resolved successor sets for `jr` sites, from value-set analysis.
    pub jr_targets: BTreeMap<u64, BTreeSet<u64>>,
    /// Extra function roots (trap handlers, thread entry points) whose
    /// addresses were found flowing into `sys` by value-set analysis.
    pub extra_roots: BTreeMap<u64, String>,
}

/// The recovered control-flow graph of a linked image.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// All blocks, keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
    /// All functions, keyed by entry address.
    pub functions: BTreeMap<u64, Function>,
    /// Call-graph edges `(caller entry, callee entry)`.
    pub call_edges: BTreeSet<(u64, u64)>,
    /// Addresses where decoding failed and recovery degraded to `.byte`.
    pub gaps: BTreeSet<u64>,
    /// `jr` sites: address → resolved targets (empty when unresolved).
    pub jr_sites: BTreeMap<u64, BTreeSet<u64>>,
    /// `callr` sites with no static callee.
    pub callr_sites: BTreeSet<u64>,
}

impl Cfg {
    /// Total number of intra-procedural edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.blocks.values().map(|b| b.succs.len()).sum()
    }

    /// The function containing `addr`, if any block covers it.
    #[must_use]
    pub fn function_of(&self, addr: u64) -> Option<&Function> {
        self.functions.values().find(|f| {
            f.blocks
                .iter()
                .any(|b| self.blocks[b].start <= addr && addr < self.blocks[b].end)
        })
    }
}

/// Recovers the CFG of `code` starting from `roots` (address → name).
///
/// # Panics
///
/// Panics only when an armed chaos plan injects a fault at the
/// `cfg_build` site; the study runner contains it per cell.
#[must_use]
pub fn build(code: &CodeMap, roots: &BTreeMap<u64, String>, input: &CfgInput) -> Cfg {
    // Fault-injection point: one hit per CFG recovery. Inert (one relaxed
    // atomic load) unless a chaos plan is armed on this thread.
    if let Some(action) = bomblab_fault::fault_point(bomblab_fault::FaultSite::CfgBuild) {
        match action {
            bomblab_fault::FaultAction::Stall => bomblab_fault::trip_stall(),
            _ => panic!("injected panic in cfg recovery"),
        }
    }
    let mut cfg = Cfg::default();
    let mut pending: VecDeque<(u64, String)> = roots
        .iter()
        .chain(input.extra_roots.iter())
        .map(|(&a, n)| (a, n.clone()))
        .collect();
    let mut seen_fns: BTreeSet<u64> = BTreeSet::new();

    while let Some((entry, name)) = pending.pop_front() {
        if !seen_fns.insert(entry) || !code.in_text(entry) {
            continue;
        }
        let f = recover_function(code, entry, name, input, &mut cfg, |callee, cname| {
            pending.push_back((callee, cname));
        });
        cfg.functions.insert(entry, f);
    }
    cfg
}

/// Recovers one function; `on_call` receives newly discovered call targets.
fn recover_function(
    code: &CodeMap,
    entry: u64,
    name: String,
    input: &CfgInput,
    cfg: &mut Cfg,
    mut on_call: impl FnMut(u64, String),
) -> Function {
    // Instruction-level sweep.
    let mut insns: BTreeMap<u64, Insn> = BTreeMap::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    let mut succs_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    leaders.insert(entry);
    let mut work = vec![entry];
    while let Some(pc) = work.pop() {
        if insns.contains_key(&pc) {
            continue;
        }
        let Some(bytes) = code.text_at(pc) else {
            cfg.gaps.insert(pc);
            continue;
        };
        let Ok((insn, len)) = Insn::decode(bytes) else {
            // Degrade to `.byte`: record the gap, stop this path.
            cfg.gaps.insert(pc);
            continue;
        };
        insns.insert(pc, insn);
        let next = pc + len as u64;
        let mut push_edge = |succs: &mut Vec<u64>, t: u64| {
            succs.push(t);
            leaders.insert(t);
            work.push(t);
        };
        let mut succs = Vec::new();
        match insn {
            Insn::Branch { rel, .. } | Insn::FBranch { rel, .. } => {
                push_edge(&mut succs, next);
                push_edge(&mut succs, pc.wrapping_add_signed(rel.into()));
            }
            Insn::Jmp { rel } => {
                push_edge(&mut succs, pc.wrapping_add_signed(rel.into()));
            }
            Insn::Jr { .. } => {
                let targets = input.jr_targets.get(&pc).cloned().unwrap_or_default();
                for &t in &targets {
                    if code.in_text(t) {
                        push_edge(&mut succs, t);
                    }
                }
                cfg.jr_sites.insert(pc, targets);
            }
            Insn::Call { rel } => {
                let callee = pc.wrapping_add_signed(rel.into());
                cfg.call_edges.insert((entry, callee));
                on_call(callee, code.name_of(callee));
                push_edge(&mut succs, next);
            }
            Insn::Callr { .. } => {
                cfg.callr_sites.insert(pc);
                push_edge(&mut succs, next);
            }
            Insn::Ret | Insn::Halt => {}
            _ => {
                // Fall through, including `sys` (which returns to next).
                succs.push(next);
                work.push(next);
            }
        }
        if !succs.is_empty() {
            succs_of.insert(pc, succs);
        }
        // Anything after a terminator starts a fresh block.
        if insn.is_terminator() && insn.class() != InsnClass::Call {
            leaders.insert(next);
        }
    }

    // Block construction: split the instruction map at leaders.
    let mut blocks: Vec<u64> = Vec::new();
    let mut current: Option<Block> = None;
    let addrs: Vec<u64> = insns.keys().copied().collect();
    for pc in addrs {
        let insn = insns[&pc];
        let end = pc + insn.len() as u64;
        let contiguous = current.as_ref().is_some_and(|b| b.end == pc);
        if leaders.contains(&pc) || !contiguous {
            if let Some(mut b) = current.take() {
                // A block cut by a leader falls through to it.
                if b.end == pc
                    && !b
                        .insns
                        .last()
                        .is_some_and(|(_, i)| i.is_terminator() && i.class() != InsnClass::Call)
                {
                    b.succs.push(pc);
                }
                finish_block(b, &mut blocks, cfg);
            }
            current = Some(Block {
                start: pc,
                end,
                insns: vec![(pc, insn)],
                succs: Vec::new(),
            });
        } else if let Some(b) = current.as_mut() {
            b.insns.push((pc, insn));
            b.end = end;
        }
        let terminates = match insn {
            Insn::Call { .. } | Insn::Callr { .. } => false,
            _ => insn.is_terminator(),
        };
        if terminates {
            let mut b = current.take().expect("block in progress");
            b.succs = succs_of.get(&pc).cloned().unwrap_or_default();
            finish_block(b, &mut blocks, cfg);
        } else {
            current.as_mut().expect("block in progress").end = end;
        }
    }
    if let Some(mut b) = current.take() {
        // Ran off into a gap or another function's leader.
        if insns.contains_key(&b.end) || leaders.contains(&b.end) {
            b.succs.push(b.end);
        }
        finish_block(b, &mut blocks, cfg);
    }
    // Drop successor edges into addresses that never produced a block
    // (unresolved targets landing in gaps).
    let known: BTreeSet<u64> = blocks.iter().copied().collect();
    for &b in &blocks {
        if let Some(block) = cfg.blocks.get_mut(&b) {
            block.succs.retain(|s| known.contains(s));
            block.succs.sort_unstable();
            block.succs.dedup();
        }
    }

    let mut f = Function {
        entry,
        name,
        blocks,
        idom: BTreeMap::new(),
        post_idom: BTreeMap::new(),
        loop_headers: BTreeSet::new(),
        loop_depth: BTreeMap::new(),
    };
    f.blocks.sort_unstable();
    compute_dominators(&mut f, &cfg.blocks);
    f
}

fn finish_block(b: Block, blocks: &mut Vec<u64>, cfg: &mut Cfg) {
    blocks.push(b.start);
    // Functions may share tails; first recovery wins, shapes agree.
    cfg.blocks.entry(b.start).or_insert(b);
}

/// Dominator tree, post-dominator tree, and loop structure via [`dom`].
fn compute_dominators(f: &mut Function, blocks: &BTreeMap<u64, Block>) {
    if !blocks.contains_key(&f.entry) {
        return; // the entry itself failed to decode
    }
    let succs = |b: u64| -> Vec<u64> {
        blocks
            .get(&b)
            .map(|blk| {
                blk.succs
                    .iter()
                    .copied()
                    .filter(|s| blocks.contains_key(s))
                    .collect()
            })
            .unwrap_or_default()
    };
    let tree = dom::dominators(f.entry, &succs);
    let loops = dom::natural_loops(&tree, &succs);
    f.loop_headers = loops.headers;
    f.loop_depth = loops.depth;
    f.idom = tree.idom;
    f.post_idom = dom::post_dominators(f.entry, &succs).idom;
}
