//! Address-space view of a linked image (plus optional shared library).

use bomblab_isa::image::{layout, Image};
use std::collections::BTreeMap;

/// A contiguous mapped segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Base address.
    pub base: u64,
    /// Raw bytes.
    pub bytes: Vec<u8>,
    /// Whether this segment holds code.
    pub is_text: bool,
}

impl Segment {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes.len() as u64
    }
}

/// Coarse memory regions used by the value-set analysis for store/load
/// reasoning and region-level taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Region {
    /// Executable or library text/data (the statically initialized image).
    Static,
    /// The stack.
    Stack,
    /// The argv block (attacker-controlled input).
    Argv,
    /// Anything else (heap, stubs, unmapped).
    Other,
}

/// The analyzed address space: text + data segments and symbol names.
#[derive(Debug, Clone)]
pub struct CodeMap {
    segs: Vec<Segment>,
    symbols: BTreeMap<u64, String>,
}

impl CodeMap {
    /// Builds the map from a linked executable and its optional library.
    #[must_use]
    pub fn new(exe: &Image, lib: Option<&Image>) -> CodeMap {
        let mut segs = vec![
            Segment {
                base: exe.text_base,
                bytes: exe.text.clone(),
                is_text: true,
            },
            Segment {
                base: exe.data_base,
                bytes: exe.data.clone(),
                is_text: false,
            },
        ];
        let mut symbols: BTreeMap<u64, String> = BTreeMap::new();
        for (name, &addr) in &exe.symbols {
            symbols.entry(addr).or_insert_with(|| name.clone());
        }
        if let Some(l) = lib {
            segs.push(Segment {
                base: l.text_base,
                bytes: l.text.clone(),
                is_text: true,
            });
            segs.push(Segment {
                base: l.data_base,
                bytes: l.data.clone(),
                is_text: false,
            });
            for (name, &addr) in &l.symbols {
                symbols.entry(addr).or_insert_with(|| name.clone());
            }
        }
        CodeMap { segs, symbols }
    }

    /// Whether `addr` falls inside a text segment.
    #[must_use]
    pub fn in_text(&self, addr: u64) -> bool {
        self.segs.iter().any(|s| s.is_text && s.contains(addr))
    }

    /// Whether `addr` falls inside any static segment (text or data).
    #[must_use]
    pub fn in_static(&self, addr: u64) -> bool {
        self.segs.iter().any(|s| s.contains(addr))
    }

    /// The bytes from `addr` to the end of its text segment.
    #[must_use]
    pub fn text_at(&self, addr: u64) -> Option<&[u8]> {
        self.segs
            .iter()
            .find(|s| s.is_text && s.contains(addr))
            .map(|s| &s.bytes[(addr - s.base) as usize..])
    }

    /// Reads `size` (1/2/4/8) little-endian bytes of static data at `addr`.
    #[must_use]
    pub fn read_uint(&self, addr: u64, size: u64) -> Option<u64> {
        let s = self.segs.iter().find(|s| s.contains(addr))?;
        let off = (addr - s.base) as usize;
        let end = off.checked_add(size as usize)?;
        if end > s.bytes.len() {
            return None;
        }
        let mut v = 0u64;
        for (i, &b) in s.bytes[off..end].iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        Some(v)
    }

    /// The symbol at exactly `addr`, or a synthesized `fn_<addr>` name.
    #[must_use]
    pub fn name_of(&self, addr: u64) -> String {
        self.symbols
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| format!("fn_{addr:#x}"))
    }

    /// All symbols pointing into text, as CFG roots.
    #[must_use]
    pub fn text_symbols(&self) -> BTreeMap<u64, String> {
        self.symbols
            .iter()
            .filter(|(&a, _)| self.in_text(a))
            .map(|(&a, n)| (a, n.clone()))
            .collect()
    }

    /// The coarse region containing `addr`.
    #[must_use]
    pub fn region_of(&self, addr: u64) -> Region {
        if self.in_static(addr) {
            Region::Static
        } else if (layout::STACK_TOP - 16 * layout::STACK_STRIDE..layout::STACK_TOP).contains(&addr)
        {
            // Main stack or one of the spawned-thread stacks below it.
            Region::Stack
        } else if (layout::ARGV_BASE..layout::ARGV_BASE + layout::ARGV_SIZE).contains(&addr) {
            Region::Argv
        } else {
            Region::Other
        }
    }
}
