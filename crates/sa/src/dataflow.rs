//! Reaching definitions and def-use chains over BVM registers and
//! VSA-style resolved stack slots.
//!
//! Each recovered function gets its own flow graph. Definition sites are
//! `(pc, location)` pairs; locations are the 32 integer registers, the
//! 16 float registers, *resolved stack slots* (loads/stores through
//! `sp`/`fp` plus a constant, where the frame offset is provable by a
//! light intra-procedural stack-pointer analysis), and a single
//! conservative `Mem` cell for everything else. Matching is sound, not
//! precise: a `Mem` definition reaches every memory read, a slot read
//! also consumes `Mem` definitions (a callee may have written the slot
//! through a pointer), and calls/syscalls define `Mem`.
//!
//! The reaching-definitions fixpoint is the classic bitset worklist:
//! `in[b] = ∪ out[pred]`, `out[b] = gen[b] ∪ (in[b] − kill[b])`. The
//! converged `in` sets are retained so tests can assert idempotence
//! (one more transfer round changes nothing).

use crate::cfg::{Block, Function};
use bomblab_isa::{Insn, Opcode, Reg};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// An abstract storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// Integer register by index.
    Reg(u8),
    /// Float register by index.
    FReg(u8),
    /// A stack slot at a provable frame offset (bytes relative to the
    /// function-entry stack pointer; negative = below the entry sp).
    Slot(i64),
    /// Any other memory.
    Mem,
}

/// How a definition came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// Synthesized at function entry (incoming argument / caller state).
    Entry,
    /// Written by the instruction at `pc`.
    Insn,
}

/// One definition site.
#[derive(Debug, Clone, Copy)]
pub struct Def {
    /// Address of the defining instruction (the entry pc for
    /// [`DefKind::Entry`] definitions).
    pub pc: u64,
    /// The location written.
    pub loc: Loc,
    /// Entry-synthesized or real.
    pub kind: DefKind,
    /// The definition reads memory (a load/pop) — the taint pass
    /// re-taints these when the global memory cell becomes tainted.
    pub from_mem: bool,
}

/// Def-use facts for one function.
#[derive(Debug, Clone, Default)]
pub struct FuncFlow {
    /// Function entry address.
    pub entry: u64,
    /// All definition sites, entry definitions first.
    pub defs: Vec<Def>,
    /// Definition index -> pcs of instructions using it.
    pub def_uses: Vec<BTreeSet<u64>>,
    /// pc -> definition indices reaching the uses at that instruction.
    pub uses_at: BTreeMap<u64, Vec<usize>>,
    /// pc -> definition indices the instruction generates.
    pub insn_defs: BTreeMap<u64, Vec<usize>>,
    /// Entry definition index per location.
    pub entry_defs: BTreeMap<Loc, usize>,
    /// Call sites: pc -> direct callee entry (`None` for `callr`).
    pub calls: BTreeMap<u64, Option<u64>>,
    /// `ret` instruction addresses (the return-value channel).
    pub ret_pcs: BTreeSet<u64>,
    /// Converged reaching-definitions bitset at each block entry.
    pub block_in: BTreeMap<u64, Vec<u64>>,
    gen: BTreeMap<u64, Vec<u64>>,
    kill: BTreeMap<u64, Vec<u64>>,
}

/// Register uses and definitions of one instruction, with memory
/// locations resolved against the current frame offsets.
fn defs_uses(
    insn: &Insn,
    sp: Option<i64>,
    fp: Option<i64>,
    callee: impl Fn(&Insn) -> Option<u64>,
) -> (Vec<Loc>, Vec<Loc>) {
    use Insn::*;
    let r = |reg: Reg| Loc::Reg(reg.index() as u8);
    let f = |fr: bomblab_isa::FReg| Loc::FReg(fr.index() as u8);
    let slot = |base: Reg, off: i32| -> Loc {
        let frame = if base == Reg::SP {
            sp
        } else if base == Reg::FP {
            fp
        } else {
            None
        };
        match frame {
            Some(k) => Loc::Slot(k + i64::from(off)),
            None => Loc::Mem,
        }
    };
    // Call sites use every argument channel — the six integer argument
    // registers plus all float registers (the float calling convention
    // is not pinned down statically, so all of them may carry values).
    let args: Vec<Loc> = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5]
        .into_iter()
        .map(r)
        .chain((0..bomblab_isa::FReg::COUNT).map(|i| Loc::FReg(i as u8)))
        .collect();
    let _ = callee;
    match *insn {
        Alu3 { rd, rs, rt, .. } => (vec![r(rd)], vec![r(rs), r(rt)]),
        AluI { rd, rs, .. } => (vec![r(rd)], vec![r(rs)]),
        Mov { rd, rs } | Not { rd, rs } | Neg { rd, rs } => (vec![r(rd)], vec![r(rs)]),
        Li { rd, .. } => (vec![r(rd)], vec![]),
        Load { rd, base, off, .. } => (vec![r(rd)], vec![r(base), slot(base, off)]),
        Store { src, base, off, .. } => (vec![slot(base, off)], vec![r(src), r(base)]),
        Push { rs } => (vec![r(Reg::SP), slot(Reg::SP, -8)], vec![r(rs), r(Reg::SP)]),
        Pop { rd } => (vec![r(rd), r(Reg::SP)], vec![r(Reg::SP), slot(Reg::SP, 0)]),
        Branch { rs, rt, .. } => (vec![], vec![r(rs), r(rt)]),
        Jmp { .. } | Nop => (vec![], vec![]),
        Jr { rs } => (vec![], vec![r(rs)]),
        Call { .. } => (vec![r(Reg::A0), Loc::FReg(0), r(Reg::RA), Loc::Mem], args),
        Callr { rs } => {
            let mut uses = vec![r(rs)];
            uses.extend(args);
            (vec![r(Reg::A0), Loc::FReg(0), r(Reg::RA), Loc::Mem], uses)
        }
        // `ret` uses `a0`/`f0` as the return-value channels so
        // interprocedural taint can hop back to call sites.
        Ret => (vec![], vec![r(Reg::RA), r(Reg::A0), Loc::FReg(0)]),
        Sys => {
            let mut uses = vec![r(Reg::SV)];
            uses.extend(args);
            (vec![r(Reg::A0), Loc::Mem], uses)
        }
        Halt => (vec![], vec![r(Reg::A0)]),
        FAlu3 { fd, fs, ft, .. } => (vec![f(fd)], vec![f(fs), f(ft)]),
        FAlu2 { fd, fs, .. } => (vec![f(fd)], vec![f(fs)]),
        FLd { fd, base, off } => (vec![f(fd)], vec![r(base), slot(base, off)]),
        FSt { fs, base, off } => (vec![slot(base, off)], vec![f(fs), r(base)]),
        FLi { fd, .. } => (vec![f(fd)], vec![]),
        FCvtSiToD { fd, rs } => (vec![f(fd)], vec![r(rs)]),
        FCvtDToSi { rd, fs } => (vec![r(rd)], vec![f(fs)]),
        FBranch { fs, ft, .. } => (vec![], vec![f(fs), f(ft)]),
        FBits { rd, fs } => (vec![r(rd)], vec![f(fs)]),
        FFromBits { fd, rs } => (vec![f(fd)], vec![r(rs)]),
    }
}

/// Whether a definition of `def` can reach a use of `use_`. `Mem`
/// definitions feed every memory read; slot reads also consume `Mem`.
#[must_use]
pub fn loc_matches(def: Loc, use_: Loc) -> bool {
    match (def, use_) {
        (a, b) if a == b => true,
        (Loc::Mem, Loc::Slot(_)) | (Loc::Slot(_), Loc::Mem) => true,
        _ => false,
    }
}

/// Whether a definition of `def` *kills* earlier definitions of `prev`
/// (strong update: same register or the exact same slot; `Mem` never
/// kills anything).
fn loc_kills(def: Loc, prev: Loc) -> bool {
    def != Loc::Mem && def == prev
}

fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

/// Per-block stack-frame offsets (`sp` and `fp` relative to the entry
/// stack pointer), or `None` when the offset is not provable.
fn frame_offsets(
    f: &Function,
    blocks: &BTreeMap<u64, Block>,
) -> BTreeMap<u64, (Option<i64>, Option<i64>)> {
    let mut at_entry: BTreeMap<u64, (Option<i64>, Option<i64>)> = BTreeMap::new();
    at_entry.insert(f.entry, (Some(0), None));
    let mut work = vec![f.entry];
    while let Some(b) = work.pop() {
        let Some(block) = blocks.get(&b) else {
            continue;
        };
        let (mut sp, mut fp) = at_entry.get(&b).copied().unwrap_or((None, None));
        for &(_, insn) in &block.insns {
            step_frame(&insn, &mut sp, &mut fp);
        }
        for &s in &block.succs {
            if !f.blocks.contains(&s) {
                continue;
            }
            let next = (sp, fp);
            match at_entry.get(&s) {
                None => {
                    at_entry.insert(s, next);
                    work.push(s);
                }
                Some(&prev) if prev == next => {}
                Some(&prev) => {
                    // Conflicting frame shapes at a join: degrade.
                    let merged = (
                        if prev.0 == next.0 { prev.0 } else { None },
                        if prev.1 == next.1 { prev.1 } else { None },
                    );
                    if merged != prev {
                        at_entry.insert(s, merged);
                        work.push(s);
                    }
                }
            }
        }
    }
    at_entry
}

/// Advances the tracked `sp`/`fp` frame offsets over one instruction.
fn step_frame(insn: &Insn, sp: &mut Option<i64>, fp: &mut Option<i64>) {
    match *insn {
        Insn::Push { .. } => *sp = sp.map(|k| k - 8),
        Insn::Pop { rd } => {
            *sp = sp.map(|k| k + 8);
            if rd == Reg::FP {
                *fp = None;
            }
            if rd == Reg::SP {
                *sp = None;
            }
        }
        Insn::AluI {
            op: Opcode::AddI,
            rd,
            rs,
            imm,
        } if rd == Reg::SP && rs == Reg::SP => *sp = sp.map(|k| k + i64::from(imm)),
        Insn::Mov { rd, rs } if rd == Reg::FP && rs == Reg::SP => *fp = *sp,
        _ => {
            let (defs, _) = defs_uses(insn, None, None, |_| None);
            if defs.contains(&Loc::Reg(Reg::SP.index() as u8)) {
                *sp = None;
            }
            if defs.contains(&Loc::Reg(Reg::FP.index() as u8)) {
                *fp = None;
            }
        }
    }
}

/// Builds def-use facts for one recovered function.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn analyze_function(f: &Function, blocks: &BTreeMap<u64, Block>) -> FuncFlow {
    let mut flow = FuncFlow {
        entry: f.entry,
        ..FuncFlow::default()
    };
    if !blocks.contains_key(&f.entry) {
        return flow;
    }
    let frames = frame_offsets(f, blocks);
    let member: BTreeSet<u64> = f.blocks.iter().copied().collect();

    // Entry definitions: every integer and float register plus the
    // memory cell (float registers carry cross-call float arguments,
    // e.g. `sin` taking `x` in `f0`).
    for i in 0..Reg::COUNT {
        let idx = flow.defs.len();
        flow.defs.push(Def {
            pc: f.entry,
            loc: Loc::Reg(i as u8),
            kind: DefKind::Entry,
            from_mem: false,
        });
        flow.entry_defs.insert(Loc::Reg(i as u8), idx);
    }
    for i in 0..bomblab_isa::FReg::COUNT {
        let idx = flow.defs.len();
        flow.defs.push(Def {
            pc: f.entry,
            loc: Loc::FReg(i as u8),
            kind: DefKind::Entry,
            from_mem: false,
        });
        flow.entry_defs.insert(Loc::FReg(i as u8), idx);
    }
    let mem_entry = flow.defs.len();
    flow.defs.push(Def {
        pc: f.entry,
        loc: Loc::Mem,
        kind: DefKind::Entry,
        from_mem: false,
    });
    flow.entry_defs.insert(Loc::Mem, mem_entry);

    // First pass: enumerate instruction definitions in address order,
    // tracking frame offsets so slots resolve deterministically.
    for &b in &f.blocks {
        let Some(block) = blocks.get(&b) else {
            continue;
        };
        let (mut sp, mut fp) = frames.get(&b).copied().unwrap_or((None, None));
        for &(pc, insn) in &block.insns {
            let from_mem = matches!(
                insn,
                Insn::Load { .. } | Insn::Pop { .. } | Insn::FLd { .. }
            );
            let (defs, _) = defs_uses(&insn, sp, fp, |_| None);
            for loc in defs {
                let idx = flow.defs.len();
                flow.defs.push(Def {
                    pc,
                    loc,
                    kind: DefKind::Insn,
                    from_mem,
                });
                flow.insn_defs.entry(pc).or_default().push(idx);
            }
            match insn {
                Insn::Call { rel } => {
                    flow.calls
                        .insert(pc, Some(pc.wrapping_add_signed(rel.into())));
                }
                Insn::Callr { .. } => {
                    flow.calls.insert(pc, None);
                }
                Insn::Ret => {
                    flow.ret_pcs.insert(pc);
                }
                _ => {}
            }
            step_frame(&insn, &mut sp, &mut fp);
        }
    }
    flow.def_uses = vec![BTreeSet::new(); flow.defs.len()];
    let words = flow.defs.len().div_ceil(64);

    // gen/kill per block.
    for &b in &f.blocks {
        let Some(block) = blocks.get(&b) else {
            continue;
        };
        let mut gen = vec![0u64; words];
        let mut kill = vec![0u64; words];
        for &(pc, _) in &block.insns {
            for &d in flow.insn_defs.get(&pc).into_iter().flatten() {
                let loc = flow.defs[d].loc;
                for (j, other) in flow.defs.iter().enumerate() {
                    if j != d && loc_kills(loc, other.loc) {
                        bit_set(&mut kill, j);
                        gen[j / 64] &= !(1 << (j % 64));
                    }
                }
                bit_set(&mut gen, d);
            }
        }
        flow.gen.insert(b, gen);
        flow.kill.insert(b, kill);
    }

    // Worklist fixpoint.
    let mut block_in: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut block_out: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut entry_in = vec![0u64; words];
    for &d in flow.entry_defs.values() {
        bit_set(&mut entry_in, d);
    }
    block_in.insert(f.entry, entry_in);
    let mut work: Vec<u64> = vec![f.entry];
    while let Some(b) = work.pop() {
        let input = block_in.get(&b).cloned().unwrap_or_else(|| vec![0; words]);
        let mut out = input.clone();
        if let (Some(g), Some(k)) = (flow.gen.get(&b), flow.kill.get(&b)) {
            for w in 0..words {
                out[w] = g[w] | (input[w] & !k[w]);
            }
        }
        if block_out.get(&b) == Some(&out) {
            continue;
        }
        block_out.insert(b, out.clone());
        for &s in blocks.get(&b).map_or(&[][..], |bl| bl.succs.as_slice()) {
            if !member.contains(&s) {
                continue;
            }
            let sin = block_in.entry(s).or_insert_with(|| vec![0; words]);
            let mut changed = false;
            for w in 0..words {
                let merged = sin[w] | out[w];
                if merged != sin[w] {
                    sin[w] = merged;
                    changed = true;
                }
            }
            if changed || !block_out.contains_key(&s) {
                work.push(s);
            }
        }
    }

    // Second pass: def-use edges, walking each block with the live set.
    for &b in &f.blocks {
        let Some(block) = blocks.get(&b) else {
            continue;
        };
        let Some(input) = block_in.get(&b) else {
            continue; // unreachable block: no live defs flow into it
        };
        let mut live = input.clone();
        let (mut sp, mut fp) = frames.get(&b).copied().unwrap_or((None, None));
        for &(pc, insn) in &block.insns {
            let (_, uses) = defs_uses(&insn, sp, fp, |_| None);
            for use_loc in &uses {
                for (j, def) in flow.defs.iter().enumerate() {
                    if bit_get(&live, j) && loc_matches(def.loc, *use_loc) {
                        flow.def_uses[j].insert(pc);
                        let slot = flow.uses_at.entry(pc).or_default();
                        if !slot.contains(&j) {
                            slot.push(j);
                        }
                    }
                }
            }
            for &d in flow.insn_defs.get(&pc).into_iter().flatten() {
                let loc = flow.defs[d].loc;
                for (j, other) in flow.defs.iter().enumerate() {
                    if j != d && loc_kills(loc, other.loc) {
                        live[j / 64] &= !(1 << (j % 64));
                    }
                }
                bit_set(&mut live, d);
            }
            step_frame(&insn, &mut sp, &mut fp);
        }
    }
    flow.block_in = block_in;
    flow
}

impl FuncFlow {
    /// Re-applies one full transfer round to the converged `block_in`
    /// sets and reports whether anything would still change — the
    /// idempotence obligation of a correct fixpoint.
    #[must_use]
    pub fn fixpoint_stable(&self, f: &Function, blocks: &BTreeMap<u64, Block>) -> bool {
        let words = self.defs.len().div_ceil(64);
        let member: BTreeSet<u64> = f.blocks.iter().copied().collect();
        for (&b, input) in &self.block_in {
            let mut out = input.clone();
            if let (Some(g), Some(k)) = (self.gen.get(&b), self.kill.get(&b)) {
                for w in 0..words {
                    out[w] = g[w] | (input[w] & !k[w]);
                }
            }
            for &s in blocks.get(&b).map_or(&[][..], |bl| bl.succs.as_slice()) {
                if !member.contains(&s) {
                    continue;
                }
                let Some(sin) = self.block_in.get(&s) else {
                    return false; // an edge into a block the fixpoint missed
                };
                for w in 0..words {
                    if out[w] & !sin[w] != 0 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Total number of def-use edges (for summaries).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.def_uses.iter().map(BTreeSet::len).sum()
    }
}
