//! Symbolic-execution tests: extract constraints from real traces, solve,
//! and verify the generated inputs by replaying them on the VM.

use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_solver::{FloatMode, Model, SolveOutcome, Solver};
use bomblab_symex::{MemoryModel, PropagationPolicy, SymExec, SymResult};
use bomblab_vm::{Machine, MachineConfig, RunStatus, Trace};

const ARG_PREFIX: &str = "arg1";

/// Builds, runs with `argv[1] = seed`, and returns the trace plus the
/// pre-run memory snapshot.
fn run_traced(src: &str, seed: &str) -> (Trace, bomblab_vm::Memory, RunStatus) {
    let image = link_program(src).expect("program builds");
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg(seed)
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    let snapshot = machine
        .process_memory(bomblab_vm::ROOT_PID)
        .expect("root exists")
        .clone();
    let status = machine.run().status;
    (machine.take_trace(), snapshot, status)
}

/// Address of argv[1]'s bytes in the loader layout (argc == 2).
fn argv1_addr() -> u64 {
    layout::ARGV_BASE + 16 + 5 // past 2 pointers and "bomb\0"
}

fn symexec(model: MemoryModel, src: &str, seed: &str) -> (SymResult, RunStatus) {
    let (trace, snapshot, status) = run_traced(src, seed);
    let mut exec = SymExec::new(model, PropagationPolicy::full());
    exec.set_initial_memory(bomblab_vm::ROOT_PID, snapshot);
    exec.symbolize_bytes(
        bomblab_vm::ROOT_PID,
        argv1_addr(),
        seed.len() as u64,
        ARG_PREFIX,
    );
    (exec.run(&trace), status)
}

/// Decodes a model back into an argv[1] string of `len` seed bytes.
fn model_to_arg(model: &Model, seed: &str) -> Vec<u8> {
    (0..seed.len())
        .map(|i| {
            model
                .get(&format!("{ARG_PREFIX}_b{i}"))
                .map_or(seed.as_bytes()[i], |v| v as u8)
        })
        .collect()
}

/// Replays with a new argv[1]; returns the exit code.
fn replay(src: &str, arg: &[u8]) -> i64 {
    let image = link_program(src).expect("program builds");
    let mut machine =
        Machine::load(&image, None, MachineConfig::with_arg(arg.to_vec())).expect("loads");
    machine
        .run()
        .status
        .exit_code()
        .expect("replay exits cleanly")
}

const CRACKME: &str = r#"
    .extern atoi
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    li t0, 7
    beq a0, t0, boom
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn crackme_branch_flips_to_the_bomb() {
    let (result, status) = symexec(MemoryModel::Concretize, CRACKME, "3");
    assert_eq!(status, RunStatus::Exited(0), "seed must miss the bomb");
    assert!(!result.path.is_empty(), "symbolic branches expected");

    // The final `beq a0, t0` is the last symbolic branch; flip it.
    let last = result.path.len() - 1;
    let query = result.flip_query(last);
    let SolveOutcome::Sat(model) = Solver::new().check(&query) else {
        panic!("flip query must be satisfiable");
    };
    let arg = model_to_arg(&model, "3");
    assert_eq!(
        replay(CRACKME, &arg),
        42,
        "generated input {:?} must detonate",
        String::from_utf8_lossy(&arg)
    );
}

#[test]
fn path_query_is_satisfied_by_the_seed_itself() {
    let (result, _) = symexec(MemoryModel::Concretize, CRACKME, "3");
    let query = result.path_query();
    let SolveOutcome::Sat(model) = Solver::new().check(&query) else {
        panic!("the executed path must be satisfiable");
    };
    // Any model of the path query must re-trigger the same path (exit 0).
    let arg = model_to_arg(&model, "3");
    assert_eq!(replay(CRACKME, &arg), 0);
}

const ARRAY_L1: &str = r#"
    .extern atoi
    .data
table: .byte 10, 20, 30, 40, 50, 60, 70, 80
    .text
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    andi a0, a0, 7
    li t0, table
    add t0, t0, a0
    lbu t1, [t0]
    li t2, 70
    beq t1, t2, boom
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn symbolic_map_solves_one_level_array() {
    let (result, status) = symexec(
        MemoryModel::SymbolicMap {
            max_indirection: 1,
            region: 16,
        },
        ARRAY_L1,
        "2",
    );
    assert_eq!(status, RunStatus::Exited(0));
    assert!(result.events.concretized_loads.is_empty());
    let last = result.path.len() - 1;
    let SolveOutcome::Sat(model) = Solver::new().check(&result.flip_query(last)) else {
        panic!("array flip must be satisfiable under SymbolicMap");
    };
    let arg = model_to_arg(&model, "2");
    assert_eq!(
        replay(ARRAY_L1, &arg),
        42,
        "index input {:?} must detonate",
        String::from_utf8_lossy(&arg)
    );
}

#[test]
fn concretize_model_pins_the_array_index() {
    let (result, _) = symexec(MemoryModel::Concretize, ARRAY_L1, "2");
    assert!(
        !result.events.concretized_loads.is_empty(),
        "the load must be reported concretized"
    );
    // Under the pin the loaded value is fixed to table[2] = 30, so the
    // bomb comparison never becomes symbolic: no flip of any remaining
    // branch can detonate — the paper's Es3 behaviour.
    for i in 0..result.path.len() {
        if let SolveOutcome::Sat(model) = Solver::new().check(&result.flip_query(i)) {
            let arg = model_to_arg(&model, "2");
            assert_ne!(
                replay(ARRAY_L1, &arg),
                42,
                "concretized model must not find the bomb (flip {i}, arg {arg:?})"
            );
        }
    }
}

const ARRAY_L2: &str = r#"
    .extern atoi
    .data
idx:   .byte 3, 0, 1, 2, 7, 6, 5, 4
table: .byte 10, 20, 30, 40, 50, 60, 70, 80
    .text
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    andi a0, a0, 7
    li t0, idx
    add t0, t0, a0
    lbu t1, [t0]        # level 1
    li t0, table
    add t0, t0, t1
    lbu t2, [t0]        # level 2
    li t3, 80
    beq t2, t3, boom
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn two_level_array_exceeds_indirection_budget() {
    let (result, _) = symexec(
        MemoryModel::SymbolicMap {
            max_indirection: 1,
            region: 16,
        },
        ARRAY_L2,
        "1",
    );
    assert!(
        !result.events.over_indirection.is_empty(),
        "level-2 access must exceed the budget"
    );
}

const COVERT_FILE: &str = r#"
    .data
path: .asciz "covert"
buf:  .space 8
    .text
    .global _start
_start:
    ld s0, [a1+8]
    li a0, path
    li a1, 1
    li sv, 3
    sys
    mov s1, a0
    mov a0, s1
    mov a1, s0
    li a2, 1
    li sv, 1             # write argv byte to file
    sys
    mov a0, s1
    li sv, 4
    sys
    li a0, path
    li a1, 0
    li sv, 3
    sys
    mov s1, a0
    mov a0, s1
    li a1, buf
    li a2, 1
    li sv, 2             # read it back
    sys
    li t0, buf
    lbu t1, [t0]
    li t2, 'X'
    beq t1, t2, boom
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn covert_file_flow_solved_with_full_policy() {
    let (result, _) = symexec(MemoryModel::Concretize, COVERT_FILE, "A");
    assert!(
        !result.path.is_empty(),
        "the branch on the file byte must be symbolic with through_files"
    );
    let last = result.path.len() - 1;
    let SolveOutcome::Sat(model) = Solver::new().check(&result.flip_query(last)) else {
        panic!("flip must be satisfiable");
    };
    let arg = model_to_arg(&model, "A");
    assert_eq!(arg, b"X");
    assert_eq!(replay(COVERT_FILE, &arg), 42);
}

#[test]
fn covert_file_flow_lost_without_policy() {
    let (trace, snapshot, _) = run_traced(COVERT_FILE, "A");
    let mut exec = SymExec::new(MemoryModel::Concretize, PropagationPolicy::direct_only());
    exec.set_initial_memory(bomblab_vm::ROOT_PID, snapshot);
    exec.symbolize_bytes(bomblab_vm::ROOT_PID, argv1_addr(), 1, ARG_PREFIX);
    let result = exec.run(&trace);
    assert!(
        result.path.is_empty(),
        "without file tracking the branch is concrete"
    );
    assert!(!result.events.dropped_file_flows.is_empty());
}

const STACK_COVERT: &str = r#"
    .extern atoi
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    push a0
    li a0, 0
    pop t0
    li t1, 9
    beq t0, t1, boom
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn stack_round_trip_stays_symbolic() {
    let (result, _) = symexec(MemoryModel::Concretize, STACK_COVERT, "3");
    let last = result.path.len() - 1;
    let SolveOutcome::Sat(model) = Solver::new().check(&result.flip_query(last)) else {
        panic!("flip must be satisfiable");
    };
    let arg = model_to_arg(&model, "3");
    assert_eq!(replay(STACK_COVERT, &arg), 42, "arg {arg:?}");
}

const SYM_JUMP: &str = r#"
    .extern atoi
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    andi a0, a0, 7
    shli a0, a0, 3       # 8-byte slots
    li t0, base
    add t0, t0, a0
    jr t0
base:
    jmp ok               # slot 0 (jmp is 5 bytes + 3 nops)
    nop
    nop
    nop
    jmp ok               # slot 1
    nop
    nop
    nop
    jmp ok               # slot 2
    nop
    nop
    nop
    jmp ok               # slot 3
    nop
    nop
    nop
    jmp ok               # slot 4
    nop
    nop
    nop
    jmp ok               # slot 5
    nop
    nop
    nop
    jmp boom             # slot 6 — the bomb slot
    nop
    nop
    nop
    jmp ok               # slot 7
    nop
    nop
    nop
ok:
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn symbolic_jump_is_pinned_and_reported() {
    let (result, status) = symexec(MemoryModel::Concretize, SYM_JUMP, "0");
    assert_eq!(status, RunStatus::Exited(0));
    assert!(
        !result.events.pinned_jumps.is_empty(),
        "the jr must be reported as pinned"
    );
    assert_eq!(
        result.events.pinned_jumps[0].1, 0,
        "a computed (not loaded) target has depth 0"
    );
    // The pin forces the same landing pad: asking for a different path is
    // not expressible — exactly the paper's Es3 on symbolic jumps.
    let SolveOutcome::Sat(model) = Solver::new().check(&result.path_query()) else {
        panic!("path query should be satisfiable");
    };
    let arg = model_to_arg(&model, "0");
    assert_eq!(replay(SYM_JUMP, &arg), 0, "pinned jump keeps the old path");
}

const FLOAT_BOMB: &str = r#"
    .extern atoi
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    cvt.si2d f0, a0
    fli f1, 1000000000000000000.0
    fdiv.d f0, f0, f1      # x = n / 1e18
    fli f2, 1024.0
    fadd.d f3, f2, f0      # 1024 + x
    fbeq f3, f2, check2    # == 1024 ?
    li a0, 0
    li sv, 0
    sys
check2:
    fli f4, 0.0
    fblt f4, f0, boom      # x > 0 ?
    li a0, 0
    li sv, 0
    sys
boom:
    li a0, 42
    li sv, 0
    sys
    "#;

#[test]
fn float_constraints_are_extracted_and_searchable() {
    let (result, status) = symexec(MemoryModel::Concretize, FLOAT_BOMB, "0");
    // Seed 0: 1024 + 0 == 1024 takes the first branch, then x > 0 fails.
    assert_eq!(status, RunStatus::Exited(0));
    assert!(result.has_float(), "path must contain float terms");
    let last = result.path.len() - 1;
    let query = result.flip_query(last);

    // Reject mode (most tools): unknown.
    assert!(matches!(
        Solver::new().check(&query),
        SolveOutcome::Unknown(_)
    ));

    // Local search: finds n = 1 (the paper's 0.00001-style solution).
    let SolveOutcome::Sat(model) = Solver::new()
        .with_float_mode(FloatMode::LocalSearch)
        .check(&query)
    else {
        panic!("local search should solve the float bomb");
    };
    let arg = model_to_arg(&model, "0");
    assert_eq!(replay(FLOAT_BOMB, &arg), 42, "arg {arg:?}");
}

const DIV_TRAP: &str = r#"
    .extern atoi
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    li t0, 100
    divs t1, t0, a0       # traps when argv == 0
    li a0, 0
    li sv, 0
    sys
    "#;

#[test]
fn symbolic_divisor_guards_the_trap() {
    let (result, status) = symexec(MemoryModel::Concretize, DIV_TRAP, "5");
    assert_eq!(status, RunStatus::Exited(0));
    // One of the path conds is the divisor-zero guard, not taken.
    let guard = result
        .path
        .iter()
        .find(|p| !p.taken && p.taken_target == 0)
        .expect("divisor guard present");
    assert!(!guard.taken);
    // Flipping it means finding input where the program traps: atoi == 0.
    let idx = result
        .path
        .iter()
        .position(|p| p.step == guard.step)
        .unwrap();
    let SolveOutcome::Sat(model) = Solver::new().check(&result.flip_query(idx)) else {
        panic!("trap path must be satisfiable");
    };
    let arg = model_to_arg(&model, "5");
    // Replay: the program faults (no clean exit code 0 path).
    let image = link_program(DIV_TRAP).unwrap();
    let mut machine = Machine::load(&image, None, MachineConfig::with_arg(arg.clone())).unwrap();
    assert!(
        matches!(machine.run().status, RunStatus::Faulted { .. }),
        "arg {:?} must reach the division trap",
        String::from_utf8_lossy(&arg)
    );
}
