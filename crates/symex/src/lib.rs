//! # bomblab-symex — symbolic execution over BVM traces
//!
//! The constraint-extraction stage of the paper's framework (Figure 1):
//! replay a concrete trace, carrying symbolic expressions alongside the
//! concrete values (concolic execution), and collect
//!
//! * the **path condition** — one [`PathCond`] per conditional branch whose
//!   condition depends on symbolic input, oriented by the direction the
//!   concrete run took, and
//! * **pins** — equality constraints introduced when the executor had to
//!   concretize something (a symbolic memory address, a symbolic jump
//!   target), plus the *events* describing what was concretized. Pins keep
//!   generated inputs on the traced path; events let the study map
//!   failures onto the paper's `Es2`/`Es3` labels.
//!
//! Two memory models are provided, mirroring the tools in the paper:
//!
//! * [`MemoryModel::Concretize`] — symbolic addresses are pinned to their
//!   runtime value (BAP/Triton-style); the symbolic-array challenge is
//!   unsolvable by construction.
//! * [`MemoryModel::SymbolicMap`] — symbolic addresses up to a bounded
//!   indirection depth become table lookups over the surrounding memory
//!   region (Angr-style); one-level arrays are solvable, deeper chains
//!   exceed `max_indirection` and fall back to pinning.

#![warn(missing_docs)]

use bomblab_ir::{lift, Atom, BinOp, CmpK, Place, Stmt, SupportMatrix, UnOp};
use bomblab_isa::{sys, Reg};
use bomblab_solver::expr::{BvOp, CmpOp, FCmpOp, FOp, Term};
use bomblab_vm::{InputSource, Memory, OutputSink, StepView, SysEffect, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// How symbolic memory addresses are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryModel {
    /// Pin symbolic addresses to their concrete runtime value.
    Concretize,
    /// Expand symbolic-address loads into a table over the surrounding
    /// region, up to a maximum pointer-chase depth.
    SymbolicMap {
        /// Maximum indirection depth (1 = one-level arrays).
        max_indirection: u32,
        /// Bytes included on each side of the concrete address.
        region: u64,
    },
}

/// Which covert flows the executor propagates symbolically (matching the
/// tool's taint policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationPolicy {
    /// Track symbolic bytes through file writes/reads.
    pub through_files: bool,
    /// Track symbolic bytes through pipes.
    pub through_pipes: bool,
    /// Carry symbolic thread-spawn arguments into the new thread.
    pub across_threads: bool,
    /// Carry symbolic state into forked children.
    pub across_processes: bool,
}

impl PropagationPolicy {
    /// Track everything.
    pub fn full() -> PropagationPolicy {
        PropagationPolicy {
            through_files: true,
            through_pipes: true,
            across_threads: true,
            across_processes: true,
        }
    }

    /// Track nothing beyond direct register/memory flow.
    pub fn direct_only() -> PropagationPolicy {
        PropagationPolicy {
            through_files: false,
            through_pipes: false,
            across_threads: false,
            across_processes: false,
        }
    }
}

/// Extra environment sources to symbolize (beyond pre-symbolized memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolizeEnv {
    /// Make the `time` syscall return a fresh symbolic value.
    pub time: bool,
    /// Make `net_get` deliver symbolic bytes.
    pub net: bool,
    /// Make stdin deliver symbolic bytes.
    pub stdin: bool,
    /// Model "environment" syscall returns (`time`, `getpid`, `getuid`,
    /// `lseek`, `waitpid`, `thread_join`, unknown numbers) as *fresh
    /// unconstrained variables* (`sysret_{step}`) — the Angr SimProcedure
    /// behaviour that produces the paper's `P` outcomes and the
    /// negative-bomb false positive.
    pub unconstrained_sys_returns: bool,
}

/// One symbolic conditional branch on the executed path.
#[derive(Debug, Clone)]
pub struct PathCond {
    /// Trace step index.
    pub step: usize,
    /// Instruction address.
    pub pc: u64,
    /// The branch condition as a boolean term (true ⇔ branch taken).
    pub cond: Term,
    /// Whether the concrete run took the branch.
    pub taken: bool,
    /// Address executed when the branch is taken.
    pub taken_target: u64,
    /// Address executed on fallthrough.
    pub fallthrough: u64,
}

impl PathCond {
    /// Names of the symbolic input variables the condition depends on —
    /// the dynamic side of the static-slice source cross-check.
    #[must_use]
    pub fn cond_var_names(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.cond.collect_vars(&mut vars);
        vars.into_iter().map(|v| v.name.to_string()).collect()
    }
}

/// An always-asserted constraint introduced by concretization.
#[derive(Debug, Clone)]
pub struct Pin {
    /// Trace step index that introduced the pin.
    pub step: usize,
    /// The constraint.
    pub cond: Term,
}

/// Noteworthy events for failure diagnosis.
#[derive(Debug, Clone, Default)]
pub struct SymEvents {
    /// Loads whose symbolic address was pinned (`Es3` shape).
    pub concretized_loads: Vec<usize>,
    /// Stores whose symbolic address was pinned.
    pub concretized_stores: Vec<usize>,
    /// Loads that exceeded the allowed indirection depth.
    pub over_indirection: Vec<usize>,
    /// Indirect jumps with symbolic targets, pinned to the runtime target,
    /// with the target's pointer-chase depth (0 = pure arithmetic, ≥1 =
    /// loaded from memory, the paper's jump-table case).
    pub pinned_jumps: Vec<(usize, u32)>,
    /// Syscalls whose number (`sv`) was symbolic.
    pub sym_sys_nums: Vec<usize>,
    /// Syscalls with symbolic argument registers.
    pub sym_sys_args: Vec<usize>,
    /// Symbolic bytes written to a file while `through_files` was off.
    pub dropped_file_flows: Vec<usize>,
    /// Symbolic bytes written to a pipe while `through_pipes` was off.
    pub dropped_pipe_flows: Vec<usize>,
    /// Symbolic spawn argument dropped (`across_threads` off).
    pub dropped_thread_flows: Vec<usize>,
    /// Maximum pointer-chase depth observed on any symbolic-address load.
    pub max_load_level: u32,
    /// Symbolic state dropped at fork (`across_processes` off).
    pub dropped_fork_flows: Vec<usize>,
}

/// Result of symbolically replaying one trace.
#[derive(Debug, Clone, Default)]
pub struct SymResult {
    /// Symbolic branches in trace order.
    pub path: Vec<PathCond>,
    /// Always-asserted concretization constraints.
    pub pins: Vec<Pin>,
    /// Diagnostic events.
    pub events: SymEvents,
}

impl SymResult {
    /// Builds the constraint set that *flips* path branch `i`: all earlier
    /// branches as taken, all pins up to that step, and the negation of
    /// branch `i`.
    pub fn flip_query(&self, i: usize) -> Vec<Term> {
        let flip_step = self.path[i].step;
        let mut out = Vec::new();
        for pin in self.pins.iter().filter(|p| p.step <= flip_step) {
            out.push(pin.cond.clone());
        }
        for pc in &self.path[..i] {
            out.push(oriented(pc));
        }
        let target = &self.path[i];
        let negated = if target.taken {
            Term::not(&target.cond)
        } else {
            target.cond.clone()
        };
        out.push(negated);
        dedup_query(out)
    }

    /// The full path condition of the executed trace (pins + oriented
    /// branches).
    pub fn path_query(&self) -> Vec<Term> {
        let mut out: Vec<Term> = self.pins.iter().map(|p| p.cond.clone()).collect();
        out.extend(self.path.iter().map(oriented));
        dedup_query(out)
    }

    /// Whether any collected constraint involves floating point.
    pub fn has_float(&self) -> bool {
        self.path.iter().any(|p| p.cond.has_float()) || self.pins.iter().any(|p| p.cond.has_float())
    }
}

fn oriented(pc: &PathCond) -> Term {
    if pc.taken {
        pc.cond.clone()
    } else {
        Term::not(&pc.cond)
    }
}

/// Drops repeated and subsumed constraints before a query reaches the
/// solver, preserving order. Hash-consing makes this exact: a guard
/// re-asserted on every iteration of a hot loop is the *same* term, and a
/// constraint already present as a conjunct of another constraint (the
/// term graphs share `BAnd` nodes) is implied by it.
fn dedup_query(constraints: Vec<Term>) -> Vec<Term> {
    use std::collections::HashSet;
    let mut seen: HashSet<usize> = HashSet::with_capacity(constraints.len());
    let unique: Vec<Term> = constraints
        .into_iter()
        .filter(|c| seen.insert(c.id()))
        .collect();
    // Ids of every conjunct reachable through top-level `BAnd` spines.
    let mut conjuncts: HashSet<usize> = HashSet::new();
    for c in &unique {
        collect_conjuncts(c, true, &mut conjuncts);
    }
    unique
        .into_iter()
        .filter(|c| !conjuncts.contains(&c.id()))
        .collect()
}

/// Records the ids of all proper sub-conjuncts of `t` (children of `BAnd`
/// spines); the root itself is skipped so a constraint never subsumes
/// itself.
fn collect_conjuncts(t: &Term, is_root: bool, out: &mut std::collections::HashSet<usize>) {
    use bomblab_solver::expr::Node;
    if let Node::BAnd(a, b) = t.node() {
        if !is_root {
            out.insert(t.id());
        }
        collect_conjuncts(a, false, out);
        collect_conjuncts(b, false, out);
    } else if !is_root {
        out.insert(t.id());
    }
}

/// A symbolic function summary applied to opaque (unloaded-library) calls
/// — the equivalent of Angr's libc SimProcedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Summary {
    /// `atoi(ptr)`: bounded symbolic decimal parse (up to 8 digits,
    /// non-negative).
    Atoi,
    /// `strlen(ptr)`: bounded symbolic length (up to 8 bytes).
    Strlen,
}

/// A symbolic value with its pointer-chase depth.
#[derive(Debug, Clone)]
struct SVal {
    term: Term,
    lvl: u32,
}

type TKey = (u32, u32);

/// Register state (GPR, FPR) a forked child inherits from its parent.
type ForkSeed = (HashMap<usize, SVal>, HashMap<usize, SVal>);

/// The concolic symbolic executor.
#[derive(Debug)]
pub struct SymExec {
    model: MemoryModel,
    policy: PropagationPolicy,
    env: SymbolizeEnv,
    mirrors: HashMap<u32, Memory>,
    sregs: HashMap<TKey, HashMap<usize, SVal>>,
    sfpr: HashMap<TKey, HashMap<usize, SVal>>,
    smem: HashMap<u32, HashMap<u64, SVal>>,
    sfiles: HashMap<String, HashMap<u64, SVal>>,
    spipes: HashMap<usize, HashMap<u64, SVal>>,
    /// Symbolic kernel file positions, keyed by (pid, fd).
    sfilepos: HashMap<(u32, u64), SVal>,
    fork_seeds: HashMap<u32, ForkSeed>,
    /// Code ranges the analysis treats as opaque (unloaded libraries).
    opaque_ranges: Vec<(u64, u64)>,
    /// Give opaque calls fresh unconstrained return values.
    opaque_fresh_returns: bool,
    /// Threads currently executing inside an opaque range.
    in_opaque: HashMap<TKey, bool>,
    /// Drop symbolic registers when a thread traps.
    clear_on_trap: bool,
    /// Push path conditions for trap guards (symbolic divisors).
    model_trap_guards: bool,
    /// Symbolic summaries for opaque functions, keyed by entry address.
    summaries: HashMap<u64, Summary>,
    /// Summary results awaiting the opaque-range exit.
    pending_rets: HashMap<TKey, SVal>,
    /// Last concrete values of a0..a5 per thread (tracked from writes).
    concrete_args: HashMap<TKey, [u64; 6]>,
    support: SupportMatrix,
}

impl SymExec {
    /// Creates an executor.
    pub fn new(model: MemoryModel, policy: PropagationPolicy) -> SymExec {
        SymExec {
            model,
            policy,
            env: SymbolizeEnv::default(),
            mirrors: HashMap::new(),
            sregs: HashMap::new(),
            sfpr: HashMap::new(),
            smem: HashMap::new(),
            sfiles: HashMap::new(),
            spipes: HashMap::new(),
            sfilepos: HashMap::new(),
            fork_seeds: HashMap::new(),
            opaque_ranges: Vec::new(),
            opaque_fresh_returns: false,
            in_opaque: HashMap::new(),
            clear_on_trap: false,
            model_trap_guards: true,
            summaries: HashMap::new(),
            pending_rets: HashMap::new(),
            concrete_args: HashMap::new(),
            support: SupportMatrix::full(),
        }
    }

    /// Treats code in `[base, base + len)` ranges as opaque: its steps are
    /// not analysed (only their concrete memory effects are mirrored), and
    /// on return the caller-saved registers lose their symbolic values —
    /// the Angr-NoLib "don't load dynamic libraries" behaviour. With
    /// `fresh_returns`, `a0` becomes a fresh `libret_{step}` variable
    /// instead (an unconstrained function summary).
    pub fn set_opaque_ranges(&mut self, ranges: Vec<(u64, u64)>, fresh_returns: bool) {
        self.opaque_ranges = ranges;
        self.opaque_fresh_returns = fresh_returns;
    }

    fn in_opaque_range(&self, pc: u64) -> bool {
        self.opaque_ranges
            .iter()
            .any(|&(base, len)| pc >= base && pc < base + len)
    }

    /// Declares additional environment sources symbolic.
    pub fn with_env(mut self, env: SymbolizeEnv) -> SymExec {
        self.env = env;
        self
    }

    /// Makes traps drop the trapping thread's symbolic registers.
    pub fn with_trap_clearing(mut self, clear: bool) -> SymExec {
        self.clear_on_trap = clear;
        self
    }

    /// Controls whether symbolic trap guards (divisor-zero conditions)
    /// become path conditions. Tools that cannot follow traps do not model
    /// the trap edge.
    pub fn with_trap_guards(mut self, model: bool) -> SymExec {
        self.model_trap_guards = model;
        self
    }

    /// Registers a symbolic summary for an opaque function entry address.
    pub fn add_summary(&mut self, addr: u64, summary: Summary) {
        self.summaries.insert(addr, summary);
    }

    /// Seeds the pre-run memory image of a process (take it from
    /// [`bomblab_vm::Machine::process_memory`] before running).
    pub fn set_initial_memory(&mut self, pid: u32, memory: Memory) {
        self.mirrors.insert(pid, memory);
    }

    /// Marks `len` bytes at `addr` symbolic, naming them
    /// `{prefix}_b0 .. {prefix}_b{len-1}`.
    pub fn symbolize_bytes(&mut self, pid: u32, addr: u64, len: u64, prefix: &str) {
        let mem = self.smem.entry(pid).or_default();
        for i in 0..len {
            let name: Arc<str> = Arc::from(format!("{prefix}_b{i}"));
            mem.insert(
                addr + i,
                SVal {
                    term: Term::var(name, 8),
                    lvl: 0,
                },
            );
        }
    }

    /// Symbolically replays a trace.
    pub fn run(&mut self, trace: &Trace) -> SymResult {
        let obs_timer = bomblab_obs::start();
        let result = self.run_inner(trace);
        if let Some(t0) = obs_timer {
            bomblab_obs::span_ns("symex.run", t0.elapsed().as_nanos() as u64);
            bomblab_obs::counter("symex.path_conds", result.path.len() as u64);
            bomblab_obs::counter("symex.pins", result.pins.len() as u64);
        }
        result
    }

    fn run_inner(&mut self, trace: &Trace) -> SymResult {
        let mut result = SymResult::default();
        for (idx, step) in trace.iter().enumerate() {
            // Seed forked children on first sight.
            if !self.sregs.contains_key(&(step.pid, step.tid)) {
                if let Some((gpr, fpr)) = self.fork_seeds.remove(&step.pid) {
                    self.sregs.insert((step.pid, step.tid), gpr);
                    self.sfpr.insert((step.pid, step.tid), fpr);
                }
            }
            // Sparse traces elide operand capture for steps the VM's taint
            // gate proved clean: no symbolic value can flow through them
            // (the gate's shadow over-approximates ours), they never write
            // memory, and their branch conditions are concrete — so the
            // replay state is unaffected. Skip them wholesale.
            if step.elided {
                continue;
            }
            // Opaque (unloaded-library) code: mirror concrete effects only.
            let key = (step.pid, step.tid);
            let opaque_now = self.in_opaque_range(step.pc);
            let was_opaque = self.in_opaque.get(&key).copied().unwrap_or(false);
            if opaque_now {
                if !was_opaque {
                    if let Some(&summary) = self.summaries.get(&step.pc) {
                        let args = self.concrete_args.get(&key).copied().unwrap_or([0; 6]);
                        if let Some(sv) = self.apply_summary(step.pid, summary, args[0]) {
                            self.pending_rets.insert(key, sv);
                        }
                    }
                }
                self.in_opaque.insert(key, true);
                if let Some(acc) = step.mem_write {
                    if let Some(mirror) = self.mirrors.get_mut(&step.pid) {
                        let _ = mirror.write_uint(acc.addr, acc.value, acc.width);
                    }
                    let mem = self.smem.entry(step.pid).or_default();
                    for i in 0..acc.width as u64 {
                        mem.remove(&(acc.addr + i));
                    }
                }
                if let Some(record) = &step.sys {
                    // Keep the mirror consistent across library syscalls.
                    if let SysEffect::InputBytes { addr, bytes, .. } = &record.effect {
                        if let Some(mirror) = self.mirrors.get_mut(&step.pid) {
                            let _ = mirror.write_bytes(*addr, bytes);
                        }
                        let mem = self.smem.entry(step.pid).or_default();
                        for i in 0..bytes.len() as u64 {
                            mem.remove(&(addr + i));
                        }
                    }
                }
                continue;
            }
            if was_opaque {
                // Returned from opaque code: caller-saved registers are
                // whatever the library left there — drop their symbols.
                self.in_opaque.insert(key, false);
                let m = self.sregs.entry(key).or_default();
                for r in 1..=15usize {
                    m.remove(&r); // a0..a5, sv, t0..t7
                }
                let f = self.sfpr.entry(key).or_default();
                f.clear();
                if let Some(sv) = self.pending_rets.remove(&key) {
                    let m = self.sregs.entry(key).or_default();
                    m.insert(Reg::A0.index(), sv);
                } else if self.opaque_fresh_returns {
                    let m = self.sregs.entry(key).or_default();
                    m.insert(
                        Reg::A0.index(),
                        SVal {
                            term: Term::var(format!("libret_{idx}"), 64),
                            lvl: 0,
                        },
                    );
                    // Floating-point results are summarised the same way
                    // (the aggressive "any return value" behaviour the
                    // paper demonstrates with pow).
                    let f = self.sfpr.entry(key).or_default();
                    f.insert(
                        0,
                        SVal {
                            term: Term::f_from_bits(&Term::var(format!("libretf_{idx}"), 64)),
                            lvl: 0,
                        },
                    );
                }
            }
            if step.sys.is_some() {
                self.apply_syscall(idx, step, &mut result);
                continue;
            }
            if step.trap.is_some() && self.clear_on_trap {
                self.sregs.remove(&key);
                self.sfpr.remove(&key);
                continue;
            }
            let block =
                lift(&step.insn, step.pc, &self.support).expect("full support lifts everything");
            // Per-instruction concrete temp values.
            let mut tmp_concrete: HashMap<u32, u64> = HashMap::new();
            let mut tmp_sym: HashMap<u32, SVal> = HashMap::new();
            for stmt in &block {
                self.apply_stmt(
                    idx,
                    step,
                    stmt,
                    &mut tmp_concrete,
                    &mut tmp_sym,
                    &mut result,
                );
            }
            // Track concrete argument registers for opaque summaries.
            let args = self.concrete_args.entry(key).or_insert([0; 6]);
            for (r, v) in step.reg_writes {
                let i = r.index();
                if (1..=6).contains(&i) {
                    args[i - 1] = *v;
                }
            }
        }
        result
    }

    /// Builds the symbolic return value of a summarised function.
    fn apply_summary(&mut self, pid: u32, summary: Summary, ptr: u64) -> Option<SVal> {
        const BOUND: u64 = 8;
        // Byte terms at ptr..ptr+BOUND (symbolic entries over mirror bytes).
        let mut bytes = Vec::new();
        let mut max_lvl = 0;
        let mut any_symbolic = false;
        for i in 0..BOUND {
            let addr = ptr + i;
            let sv = self.smem.get(&pid).and_then(|m| m.get(&addr)).cloned();
            let term = match sv {
                Some(sv) => {
                    max_lvl = max_lvl.max(sv.lvl);
                    any_symbolic = true;
                    sv.term
                }
                None => {
                    let concrete = self
                        .mirrors
                        .get(&pid)
                        .and_then(|m| m.read_uint(addr, 1).ok())
                        .unwrap_or(0);
                    Term::bv(concrete, 8)
                }
            };
            bytes.push(term);
        }
        if !any_symbolic {
            return None; // concrete input: the concrete trace suffices
        }
        let zero64 = Term::bv(0, 64);
        match summary {
            Summary::Strlen => {
                // len = first NUL index (BOUND if none).
                let mut len = Term::bv(BOUND, 64);
                for i in (0..BOUND).rev() {
                    let is_nul = Term::cmp(CmpOp::Eq, &bytes[i as usize], &Term::bv(0, 8));
                    len = Term::ite(&is_nul, &Term::bv(i, 64), &len);
                }
                Some(SVal {
                    term: len,
                    lvl: max_lvl,
                })
            }
            Summary::Atoi => {
                // Non-negative bounded parse: value accumulates while the
                // digit run continues.
                let mut value = zero64.clone();
                let mut running = Term::bool(true);
                for b in bytes.iter() {
                    let wide = Term::zext(b, 64);
                    let is_digit = Term::and(
                        &Term::cmp(CmpOp::Ule, &Term::bv(b'0' as u64, 64), &wide),
                        &Term::cmp(CmpOp::Ule, &wide, &Term::bv(b'9' as u64, 64)),
                    );
                    running = Term::and(&running, &is_digit);
                    let digit = Term::bin(BvOp::Sub, &wide, &Term::bv(b'0' as u64, 64));
                    let next = Term::bin(
                        BvOp::Add,
                        &Term::bin(BvOp::Mul, &value, &Term::bv(10, 64)),
                        &digit,
                    );
                    value = Term::ite(&running, &next, &value);
                }
                Some(SVal {
                    term: value,
                    lvl: max_lvl,
                })
            }
        }
    }

    // ---- state access ----

    fn reg_concrete(&self, step: StepView<'_>, r: Reg) -> u64 {
        step.reg_reads
            .iter()
            .find(|(reg, _)| *reg == r)
            .map_or_else(
                || panic!("register {r} not in trace reads at {:#x}", step.pc),
                |(_, v)| *v,
            )
    }

    fn freg_concrete(&self, step: StepView<'_>, r: bomblab_isa::FReg) -> f64 {
        step.freg_reads
            .iter()
            .find(|(reg, _)| *reg == r)
            .map_or_else(
                || panic!("fp register {r} not in trace reads at {:#x}", step.pc),
                |(_, v)| *v,
            )
    }

    fn sym_of_place(&self, key: TKey, place: &Place, tmp_sym: &HashMap<u32, SVal>) -> Option<SVal> {
        match place {
            Place::Gpr(r) => self
                .sregs
                .get(&key)
                .and_then(|m| m.get(&r.index()))
                .cloned(),
            Place::Fpr(r) => self.sfpr.get(&key).and_then(|m| m.get(&r.index())).cloned(),
            Place::Tmp(i) => tmp_sym.get(i).cloned(),
        }
    }

    fn set_place_sym(
        &mut self,
        key: TKey,
        place: &Place,
        val: Option<SVal>,
        tmp_sym: &mut HashMap<u32, SVal>,
    ) {
        match place {
            Place::Gpr(r) => {
                if r.index() == 0 {
                    return;
                }
                let m = self.sregs.entry(key).or_default();
                match val {
                    Some(v) => {
                        m.insert(r.index(), v);
                    }
                    None => {
                        m.remove(&r.index());
                    }
                }
            }
            Place::Fpr(r) => {
                let m = self.sfpr.entry(key).or_default();
                match val {
                    Some(v) => {
                        m.insert(r.index(), v);
                    }
                    None => {
                        m.remove(&r.index());
                    }
                }
            }
            Place::Tmp(i) => match val {
                Some(v) => {
                    tmp_sym.insert(*i, v);
                }
                None => {
                    tmp_sym.remove(i);
                }
            },
        }
    }

    /// Concrete value of an atom for this step.
    fn atom_concrete(
        &self,
        step: StepView<'_>,
        atom: &Atom,
        tmp_concrete: &HashMap<u32, u64>,
    ) -> u64 {
        match atom {
            Atom::Const(c) => *c,
            Atom::FConst(f) => f.to_bits(),
            Atom::Place(Place::Gpr(r)) => self.reg_concrete(step, *r),
            Atom::Place(Place::Fpr(r)) => self.freg_concrete(step, *r).to_bits(),
            Atom::Place(Place::Tmp(i)) => *tmp_concrete
                .get(i)
                .unwrap_or_else(|| panic!("temp %t{i} unset at {:#x}", step.pc)),
        }
    }

    /// Symbolic (or constant) integer term of an atom.
    fn atom_term(
        &self,
        step: StepView<'_>,
        atom: &Atom,
        tmp_concrete: &HashMap<u32, u64>,
        tmp_sym: &HashMap<u32, SVal>,
    ) -> SVal {
        let key = (step.pid, step.tid);
        match atom {
            Atom::Const(c) => SVal {
                term: Term::bv(*c, 64),
                lvl: 0,
            },
            Atom::FConst(f) => SVal {
                term: Term::f64(*f),
                lvl: 0,
            },
            Atom::Place(p) => {
                if let Some(sv) = self.sym_of_place(key, p, tmp_sym) {
                    sv
                } else {
                    match p {
                        Place::Fpr(r) => SVal {
                            term: Term::f64(self.freg_concrete(step, *r)),
                            lvl: 0,
                        },
                        _ => SVal {
                            term: Term::bv(self.atom_concrete(step, atom, tmp_concrete), 64),
                            lvl: 0,
                        },
                    }
                }
            }
        }
    }

    // ---- statement application ----

    #[allow(clippy::too_many_arguments)]
    fn apply_stmt(
        &mut self,
        idx: usize,
        step: StepView<'_>,
        stmt: &Stmt,
        tmp_concrete: &mut HashMap<u32, u64>,
        tmp_sym: &mut HashMap<u32, SVal>,
        result: &mut SymResult,
    ) {
        let key = (step.pid, step.tid);
        match stmt {
            Stmt::Bin { op, dst, a, b } => {
                let ca = self.atom_concrete(step, a, tmp_concrete);
                let cb = self.atom_concrete(step, b, tmp_concrete);
                let cval = concrete_bin(*op, ca, cb);
                if let Place::Tmp(i) = dst {
                    tmp_concrete.insert(*i, cval);
                }
                let sa = self.atom_term(step, a, tmp_concrete, tmp_sym);
                let sb = self.atom_term(step, b, tmp_concrete, tmp_sym);
                let symbolic = sa.term.as_const().is_none() && !is_fconst(&sa.term)
                    || sb.term.as_const().is_none() && !is_fconst(&sb.term);
                if !symbolic {
                    self.set_place_sym(key, dst, None, tmp_sym);
                    return;
                }
                // Division by a symbolic divisor constrains the divisor:
                // the concrete run either trapped (divisor == 0) or not.
                if matches!(op, BinOp::DivU | BinOp::DivS | BinOp::RemU | BinOp::RemS) {
                    let sb_sym = sb.term.as_const().is_none() && self.model_trap_guards;
                    if sb_sym {
                        let zero = Term::bv(0, 64);
                        let cond = Term::cmp(CmpOp::Eq, &sb.term, &zero);
                        result.path.push(PathCond {
                            step: idx,
                            pc: step.pc,
                            cond,
                            taken: step.trap.is_some(),
                            taken_target: 0,
                            fallthrough: 0,
                        });
                    }
                    if step.trap.is_some() {
                        // Trapped: no value written.
                        return;
                    }
                }
                let term = symbolic_bin(*op, &sa.term, &sb.term);
                let lvl = sa.lvl.max(sb.lvl);
                self.set_place_sym(key, dst, Some(SVal { term, lvl }), tmp_sym);
            }
            Stmt::Un { op, dst, a } => {
                let is_float_dst = matches!(
                    op,
                    UnOp::FMov | UnOp::FNeg | UnOp::FSqrt | UnOp::CvtSiToD | UnOp::FFromBits
                );
                // Concrete temp bookkeeping (only integer temps are read).
                if let Place::Tmp(i) = dst {
                    let cval = match op {
                        UnOp::Mov => self.atom_concrete(step, a, tmp_concrete),
                        UnOp::Not => !self.atom_concrete(step, a, tmp_concrete),
                        UnOp::Neg => self.atom_concrete(step, a, tmp_concrete).wrapping_neg(),
                        UnOp::FBits => self.atom_concrete(step, a, tmp_concrete),
                        _ => self.atom_concrete(step, a, tmp_concrete),
                    };
                    tmp_concrete.insert(*i, cval);
                }
                let sa = self.atom_term(step, a, tmp_concrete, tmp_sym);
                let operand_symbolic = sa.term.as_const().is_none() && !is_fconst(&sa.term);
                if !operand_symbolic {
                    self.set_place_sym(key, dst, None, tmp_sym);
                    return;
                }
                let term = match op {
                    UnOp::Mov | UnOp::FMov => sa.term.clone(),
                    UnOp::Not => Term::bvnot(&sa.term),
                    UnOp::Neg => Term::bvneg(&sa.term),
                    UnOp::FNeg => Term::fneg(&sa.term),
                    UnOp::FSqrt => Term::fsqrt(&sa.term),
                    UnOp::CvtSiToD => Term::cvt_si_to_f(&sa.term),
                    UnOp::CvtDToSi => Term::cvt_f_to_si(&sa.term),
                    UnOp::FBits => Term::f_bits(&sa.term),
                    UnOp::FFromBits => Term::f_from_bits(&sa.term),
                };
                let _ = is_float_dst;
                self.set_place_sym(key, dst, Some(SVal { term, lvl: sa.lvl }), tmp_sym);
            }
            Stmt::Load {
                dst,
                addr,
                width,
                sext,
                float,
            } => {
                let Some(acc) = step.mem_read else {
                    return; // trapped access
                };
                let addr_sval = self.atom_term(step, addr, tmp_concrete, tmp_sym);
                let addr_symbolic = addr_sval.term.as_const().is_none();
                let loaded = if addr_symbolic {
                    self.symbolic_address_load(idx, step, &addr_sval, acc, *width, result)
                } else {
                    self.concrete_address_load(step.pid, acc.addr, *width, acc.value)
                };
                // A fully concrete result is NOT tracked symbolically: the
                // trace's recorded operands already carry the value, and a
                // constant register entry would go stale across steps the
                // taint gate elides (their writes are invisible here).
                let value = match loaded {
                    Some(sv) if sv.term.as_const().is_none() => {
                        let term = extend(&sv.term, *width, *sext);
                        let term = if *float {
                            Term::f_from_bits(&term)
                        } else {
                            term
                        };
                        Some(SVal { term, lvl: sv.lvl })
                    }
                    _ => None,
                };
                if let Place::Tmp(i) = dst {
                    tmp_concrete.insert(*i, acc.value);
                }
                self.set_place_sym(key, dst, value, tmp_sym);
            }
            Stmt::Store { src, addr, width } => {
                let Some(acc) = step.mem_write else {
                    return; // trapped access
                };
                let addr_sval = self.atom_term(step, addr, tmp_concrete, tmp_sym);
                if addr_sval.term.as_const().is_none() {
                    // Write concretization (all models pin writes).
                    result.pins.push(Pin {
                        step: idx,
                        cond: Term::cmp(CmpOp::Eq, &addr_sval.term, &Term::bv(acc.addr, 64)),
                    });
                    result.events.concretized_stores.push(idx);
                }
                let sval = self.atom_term(step, src, tmp_concrete, tmp_sym);
                let src_symbolic = sval.term.as_const().is_none();
                let mem = self.smem.entry(step.pid).or_default();
                for i in 0..*width as u64 {
                    if src_symbolic {
                        let byte = Term::extract(&sval.term, (8 * i + 7) as u8, (8 * i) as u8);
                        mem.insert(
                            acc.addr + i,
                            SVal {
                                term: byte,
                                lvl: sval.lvl,
                            },
                        );
                    } else {
                        mem.remove(&(acc.addr + i));
                    }
                }
                // Keep the concrete mirror in sync.
                if let Some(mirror) = self.mirrors.get_mut(&step.pid) {
                    let _ = mirror.write_uint(acc.addr, acc.value, *width);
                }
            }
            Stmt::CondJump {
                cmp,
                a,
                b,
                target,
                fallthrough,
            } => {
                let sa = self.atom_term(step, a, tmp_concrete, tmp_sym);
                let sb = self.atom_term(step, b, tmp_concrete, tmp_sym);
                let cond = symbolic_cmp(*cmp, &sa.term, &sb.term);
                if cond.as_bool_const().is_some() {
                    return; // concrete condition
                }
                result.path.push(PathCond {
                    step: idx,
                    pc: step.pc,
                    cond,
                    taken: step.taken.unwrap_or(false),
                    taken_target: *target,
                    fallthrough: *fallthrough,
                });
            }
            Stmt::IndirectJump { target } => {
                let sv = self.atom_term(step, target, tmp_concrete, tmp_sym);
                if sv.term.as_const().is_none() {
                    let runtime = self.atom_concrete(step, target, tmp_concrete);
                    result.pins.push(Pin {
                        step: idx,
                        cond: Term::cmp(CmpOp::Eq, &sv.term, &Term::bv(runtime, 64)),
                    });
                    result.events.pinned_jumps.push((idx, sv.lvl));
                }
            }
            Stmt::Jump { .. } | Stmt::Halt => {}
            Stmt::Syscall => unreachable!("syscalls handled from the record"),
        }
    }

    /// Loads from a concrete address: symbolic bytes override the traced
    /// concrete value. The result term always has width `8 * width` so
    /// table entries are sort-compatible.
    fn concrete_address_load(
        &mut self,
        pid: u32,
        addr: u64,
        width: u8,
        concrete: u64,
    ) -> Option<SVal> {
        let mem = self.smem.entry(pid).or_default();
        let any_symbolic = (0..width as u64).any(|i| mem.contains_key(&(addr + i)));
        if !any_symbolic {
            return Some(SVal {
                term: Term::bv(concrete, 8 * width),
                lvl: 0,
            });
        }
        // Assemble little-endian from byte terms, high byte first in concat.
        let mut term: Option<Term> = None;
        let mut lvl = 0;
        for i in (0..width as u64).rev() {
            let byte = match mem.get(&(addr + i)) {
                Some(sv) => {
                    lvl = lvl.max(sv.lvl);
                    sv.term.clone()
                }
                None => Term::bv((concrete >> (8 * i)) & 0xff, 8),
            };
            term = Some(match term {
                Some(t) => Term::concat(&t, &byte),
                None => byte,
            });
        }
        Some(SVal {
            term: term.expect("width >= 1"),
            lvl,
        })
    }

    /// Loads through a symbolic address according to the memory model.
    fn symbolic_address_load(
        &mut self,
        idx: usize,
        step: StepView<'_>,
        addr_sval: &SVal,
        acc: bomblab_vm::MemAccess,
        width: u8,
        result: &mut SymResult,
    ) -> Option<SVal> {
        let pin_to_runtime = |this: &mut SymExec, result: &mut SymResult| {
            result.pins.push(Pin {
                step: idx,
                cond: Term::cmp(CmpOp::Eq, &addr_sval.term, &Term::bv(acc.addr, 64)),
            });
            this.concrete_address_load(step.pid, acc.addr, width, acc.value)
        };
        match self.model {
            MemoryModel::Concretize => {
                result.events.concretized_loads.push(idx);
                result.events.max_load_level = result.events.max_load_level.max(addr_sval.lvl + 1);
                pin_to_runtime(self, result)
            }
            MemoryModel::SymbolicMap {
                max_indirection,
                region,
            } => {
                let lvl = addr_sval.lvl + 1;
                result.events.max_load_level = result.events.max_load_level.max(lvl);
                if lvl > max_indirection {
                    result.events.over_indirection.push(idx);
                    result.events.concretized_loads.push(idx);
                    return pin_to_runtime(self, result).map(|mut sv| {
                        sv.lvl = lvl;
                        sv
                    });
                }
                // Build a lookup table over the surrounding region, clamped
                // to mapped memory.
                let mut lo = acc.addr.saturating_sub(region);
                let mut hi = acc.addr.saturating_add(region);
                let Some(mirror) = self.mirrors.get(&step.pid) else {
                    result.events.concretized_loads.push(idx);
                    return pin_to_runtime(self, result);
                };
                while lo < acc.addr && !mirror.is_mapped(lo, width as u64) {
                    lo += 1;
                }
                while hi > acc.addr && !mirror.is_mapped(hi, width as u64) {
                    hi -= 1;
                }
                if !mirror.is_mapped(acc.addr, width as u64) {
                    result.events.concretized_loads.push(idx);
                    return pin_to_runtime(self, result);
                }
                // Range guard keeps the table sound.
                result.pins.push(Pin {
                    step: idx,
                    cond: Term::and(
                        &Term::cmp(CmpOp::Ule, &Term::bv(lo, 64), &addr_sval.term),
                        &Term::cmp(CmpOp::Ule, &addr_sval.term, &Term::bv(hi, 64)),
                    ),
                });
                let mut table = self
                    .concrete_address_load(step.pid, acc.addr, width, acc.value)
                    .expect("concrete load always yields a value")
                    .term;
                let mut max_lvl = lvl;
                for a in lo..=hi {
                    if a == acc.addr {
                        continue;
                    }
                    let concrete = self
                        .mirrors
                        .get(&step.pid)
                        .expect("mirror checked above")
                        .read_uint(a, width)
                        .unwrap_or(0);
                    let entry = self
                        .concrete_address_load(step.pid, a, width, concrete)
                        .expect("concrete load always yields a value");
                    max_lvl = max_lvl.max(entry.lvl + 1);
                    let is_here = Term::cmp(CmpOp::Eq, &addr_sval.term, &Term::bv(a, 64));
                    table = Term::ite(&is_here, &entry.term, &table);
                }
                Some(SVal {
                    term: table,
                    lvl: max_lvl,
                })
            }
        }
    }

    // ---- syscalls ----

    fn apply_syscall(&mut self, idx: usize, step: StepView<'_>, result: &mut SymResult) {
        let key = (step.pid, step.tid);
        let record = step.sys.expect("caller checked");
        // Symbolic syscall number / arguments are diagnostic events.
        if self
            .sregs
            .get(&key)
            .is_some_and(|m| m.contains_key(&Reg::SV.index()))
        {
            result.events.sym_sys_nums.push(idx);
        }
        let arg_regs = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
        if arg_regs.iter().any(|r| {
            self.sregs
                .get(&key)
                .is_some_and(|m| m.contains_key(&r.index()))
        }) {
            result.events.sym_sys_args.push(idx);
        }
        // A symbolic file *name* is also a contextual event.
        if let SysEffect::OpenedFile { path, .. } = &record.effect {
            let mem = self.smem.entry(step.pid).or_default();
            let plen = path.len().max(1) as u64;
            if (0..plen).any(|i| mem.contains_key(&(record.args[0] + i))) {
                result.events.sym_sys_args.push(idx);
            }
        }

        match &record.effect {
            SysEffect::OutputBytes {
                addr,
                bytes,
                sink,
                offset,
            } => {
                let mem = self.smem.entry(step.pid).or_default();
                let mut symbolic_bytes: Vec<(u64, SVal)> = Vec::new();
                for i in 0..bytes.len() as u64 {
                    if let Some(sv) = mem.get(&(addr + i)) {
                        symbolic_bytes.push((i, sv.clone()));
                    }
                }
                if !symbolic_bytes.is_empty() {
                    match sink {
                        OutputSink::File(name) => {
                            if self.policy.through_files {
                                let file = self.sfiles.entry(name.clone()).or_default();
                                for (i, sv) in symbolic_bytes {
                                    file.insert(offset + i, sv);
                                }
                            } else {
                                result.events.dropped_file_flows.push(idx);
                            }
                        }
                        OutputSink::Pipe(id) => {
                            if self.policy.through_pipes {
                                let pipe = self.spipes.entry(*id).or_default();
                                for (i, sv) in symbolic_bytes {
                                    pipe.insert(offset + i, sv);
                                }
                            } else {
                                result.events.dropped_pipe_flows.push(idx);
                            }
                        }
                        OutputSink::Stdout => {}
                    }
                }
            }
            SysEffect::InputBytes {
                addr,
                bytes,
                source,
                offset,
            } => {
                // Mirror first.
                if let Some(mirror) = self.mirrors.get_mut(&step.pid) {
                    let _ = mirror.write_bytes(*addr, bytes);
                }
                for i in 0..bytes.len() as u64 {
                    let sym: Option<SVal> = match source {
                        InputSource::File(name) => self
                            .sfiles
                            .get(name)
                            .and_then(|f| f.get(&(offset + i)))
                            .cloned(),
                        InputSource::Pipe(id) => self
                            .spipes
                            .get(id)
                            .and_then(|p| p.get(&(offset + i)))
                            .cloned(),
                        InputSource::Stdin => {
                            if self.env.stdin {
                                Some(SVal {
                                    term: Term::var(format!("stdin_b{}", offset + i), 8),
                                    lvl: 0,
                                })
                            } else {
                                None
                            }
                        }
                        InputSource::Net => {
                            if self.env.net {
                                Some(SVal {
                                    term: Term::var(format!("net_b{i}"), 8),
                                    lvl: 0,
                                })
                            } else {
                                None
                            }
                        }
                    };
                    let mem = self.smem.entry(step.pid).or_default();
                    match sym {
                        Some(sv) => {
                            mem.insert(addr + i, sv);
                        }
                        None => {
                            mem.remove(&(addr + i));
                        }
                    }
                }
            }
            SysEffect::Forked { child } => {
                let parent_mirror = self.mirrors.get(&step.pid).cloned();
                let parent_smem = self.smem.get(&step.pid).cloned().unwrap_or_default();
                let gpr = self.sregs.get(&key).cloned().unwrap_or_default();
                let fpr = self.sfpr.get(&key).cloned().unwrap_or_default();
                let any = !parent_smem.is_empty() || !gpr.is_empty() || !fpr.is_empty();
                if self.policy.across_processes {
                    if let Some(m) = parent_mirror {
                        self.mirrors.insert(*child, m);
                    }
                    self.smem.insert(*child, parent_smem);
                    // a0 is concrete 0 in the child.
                    let mut child_gpr = gpr;
                    child_gpr.remove(&Reg::A0.index());
                    self.fork_seeds.insert(*child, (child_gpr, fpr));
                } else {
                    // Child still needs a concrete mirror for table loads.
                    if let Some(m) = parent_mirror {
                        self.mirrors.insert(*child, m);
                    }
                    if any {
                        result.events.dropped_fork_flows.push(idx);
                    }
                }
            }
            SysEffect::SpawnedThread { tid: new_tid, .. } => {
                let arg_sym = self
                    .sregs
                    .get(&key)
                    .and_then(|m| m.get(&Reg::A1.index()))
                    .cloned();
                if let Some(sv) = arg_sym {
                    if self.policy.across_threads {
                        let m = self.sregs.entry((step.pid, *new_tid)).or_default();
                        m.insert(Reg::A0.index(), sv);
                    } else {
                        result.events.dropped_thread_flows.push(idx);
                    }
                }
            }
            SysEffect::PipeCreated { rfd, wfd, addr } => {
                if let Some(mirror) = self.mirrors.get_mut(&step.pid) {
                    let _ = mirror.write_uint(*addr, *rfd as u64, 8);
                    let _ = mirror.write_uint(addr + 8, *wfd as u64, 8);
                }
                let mem = self.smem.entry(step.pid).or_default();
                for i in 0..16 {
                    mem.remove(&(addr + i));
                }
            }
            SysEffect::OpenedFile { .. } | SysEffect::None => {}
        }

        // lseek covert channel: a symbolic offset flows into the kernel
        // file position and back out of a later query.
        let mut lseek_sym: Option<SVal> = None;
        if record.num == sys::LSEEK {
            let fdkey = (step.pid, record.args[0]);
            let off_sym = self
                .sregs
                .get(&key)
                .and_then(|m| m.get(&Reg::A1.index()))
                .cloned();
            if let (Some(sv), 0) = (off_sym, record.args[2]) {
                // SEEK_SET with symbolic offset.
                if self.policy.through_files {
                    self.sfilepos.insert(fdkey, sv);
                }
            }
            lseek_sym = self.sfilepos.get(&fdkey).cloned();
        }

        // Return value: concrete by default; `time` may be symbolized, and
        // SimProcedure-style simulation makes environment returns fresh
        // unconstrained variables.
        let env_syscall = !matches!(
            record.num,
            sys::EXIT
                | sys::THREAD_EXIT
                | sys::WRITE
                | sys::READ
                | sys::OPEN
                | sys::CLOSE
                | sys::PIPE
                | sys::FORK
                | sys::THREAD_SPAWN
                | sys::SET_TRAP_HANDLER
                | sys::NET_GET
                | sys::UNLINK
                | sys::TIME // simulated with a concrete clock
        );
        let ret_sym = match record.num {
            sys::LSEEK if lseek_sym.is_some() && !self.env.unconstrained_sys_returns => lseek_sym,
            sys::TIME if self.env.time => Some(SVal {
                term: Term::var("time", 64),
                lvl: 0,
            }),
            _ if self.env.unconstrained_sys_returns && env_syscall => Some(SVal {
                term: Term::var(format!("sysret_{idx}"), 64),
                lvl: 0,
            }),
            _ => None,
        };
        let m = self.sregs.entry(key).or_default();
        match ret_sym {
            Some(sv) => {
                m.insert(Reg::A0.index(), sv);
            }
            None => {
                m.remove(&Reg::A0.index());
            }
        }
    }
}

fn is_fconst(t: &Term) -> bool {
    matches!(t.node(), bomblab_solver::expr::Node::FConst(_))
}

fn concrete_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or(0),
        BinOp::DivS => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        BinOp::RemU => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinOp::RemS => {
            if b == 0 {
                a
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::ShrU => a.wrapping_shr(b as u32 & 63),
        BinOp::ShrS => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::SltS => ((a as i64) < (b as i64)) as u64,
        BinOp::SltU => (a < b) as u64,
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
    }
}

fn symbolic_bin(op: BinOp, a: &Term, b: &Term) -> Term {
    match op {
        BinOp::Add => Term::bin(BvOp::Add, a, b),
        BinOp::Sub => Term::bin(BvOp::Sub, a, b),
        BinOp::Mul => Term::bin(BvOp::Mul, a, b),
        BinOp::DivU => Term::bin(BvOp::UDiv, a, b),
        BinOp::DivS => Term::bin(BvOp::SDiv, a, b),
        BinOp::RemU => Term::bin(BvOp::URem, a, b),
        BinOp::RemS => Term::bin(BvOp::SRem, a, b),
        BinOp::And => Term::bin(BvOp::And, a, b),
        BinOp::Or => Term::bin(BvOp::Or, a, b),
        BinOp::Xor => Term::bin(BvOp::Xor, a, b),
        BinOp::Shl => Term::bin(BvOp::Shl, a, b),
        BinOp::ShrU => Term::bin(BvOp::LShr, a, b),
        BinOp::ShrS => Term::bin(BvOp::AShr, a, b),
        BinOp::SltS => Term::ite(
            &Term::cmp(CmpOp::Slt, a, b),
            &Term::bv(1, 64),
            &Term::bv(0, 64),
        ),
        BinOp::SltU => Term::ite(
            &Term::cmp(CmpOp::Ult, a, b),
            &Term::bv(1, 64),
            &Term::bv(0, 64),
        ),
        BinOp::FAdd => Term::fbin(FOp::Add, a, b),
        BinOp::FSub => Term::fbin(FOp::Sub, a, b),
        BinOp::FMul => Term::fbin(FOp::Mul, a, b),
        BinOp::FDiv => Term::fbin(FOp::Div, a, b),
    }
}

fn symbolic_cmp(cmp: CmpK, a: &Term, b: &Term) -> Term {
    match cmp {
        CmpK::Eq => Term::cmp(CmpOp::Eq, a, b),
        CmpK::Ne => Term::not(&Term::cmp(CmpOp::Eq, a, b)),
        CmpK::LtS => Term::cmp(CmpOp::Slt, a, b),
        CmpK::GeS => Term::not(&Term::cmp(CmpOp::Slt, a, b)),
        CmpK::LtU => Term::cmp(CmpOp::Ult, a, b),
        CmpK::GeU => Term::not(&Term::cmp(CmpOp::Ult, a, b)),
        CmpK::FEq => Term::fcmp(FCmpOp::Eq, a, b),
        CmpK::FLt => Term::fcmp(FCmpOp::Lt, a, b),
        CmpK::FLe => Term::fcmp(FCmpOp::Le, a, b),
    }
}

/// Truncates/extends a loaded 64-bit term to the access width and back.
fn extend(t: &Term, width: u8, sext: bool) -> Term {
    if width == 8 {
        return t.clone();
    }
    let bits = 8 * width;
    let narrow = if t.width() > bits {
        Term::extract(t, bits - 1, 0)
    } else {
        t.clone()
    };
    if sext {
        Term::sext(&narrow, 64)
    } else {
        Term::zext(&narrow, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_query_orients_and_negates() {
        let x = Term::var("x", 64);
        let cond = Term::cmp(CmpOp::Eq, &x, &Term::bv(5, 64));
        let result = SymResult {
            path: vec![
                PathCond {
                    step: 0,
                    pc: 0x10,
                    cond: cond.clone(),
                    taken: true,
                    taken_target: 0x20,
                    fallthrough: 0x18,
                },
                PathCond {
                    step: 3,
                    pc: 0x30,
                    cond: cond.clone(),
                    taken: false,
                    taken_target: 0x40,
                    fallthrough: 0x38,
                },
            ],
            pins: vec![Pin {
                step: 1,
                cond: Term::cmp(CmpOp::Ult, &x, &Term::bv(100, 64)),
            }],
            events: SymEvents::default(),
        };
        // Flipping branch 1: pin (step 1 <= 3) + branch 0 as taken +
        // negation of branch 1 (it was not taken, so asserted positively —
        // the same hash-consed term as branch 0, so it dedups away).
        let q = result.flip_query(1);
        assert_eq!(q.len(), 2);
        // Flipping branch 0: the pin at step 1 comes after step 0, so it
        // is excluded; only the negated branch remains.
        let q0 = result.flip_query(0);
        assert_eq!(q0.len(), 1);
        assert_eq!(q0[0].as_bool_const(), None);
    }

    #[test]
    fn path_query_includes_everything() {
        let x = Term::var("x", 64);
        let result = SymResult {
            path: vec![PathCond {
                step: 0,
                pc: 0,
                cond: Term::cmp(CmpOp::Eq, &x, &Term::bv(1, 64)),
                taken: true,
                taken_target: 0,
                fallthrough: 0,
            }],
            pins: vec![Pin {
                step: 0,
                cond: Term::cmp(CmpOp::Ult, &x, &Term::bv(9, 64)),
            }],
            events: SymEvents::default(),
        };
        assert_eq!(result.path_query().len(), 2);
        assert!(!result.has_float());
    }

    #[test]
    fn queries_drop_repeats_and_subsumed_conjuncts() {
        let x = Term::var("x", 64);
        let a = Term::cmp(CmpOp::Eq, &x, &Term::bv(1, 64));
        let b = Term::cmp(CmpOp::Ult, &x, &Term::bv(9, 64));
        let both = Term::and(&a, &b);
        // `a` repeats and both `a` and `b` are conjuncts of `both`.
        let q = dedup_query(vec![a.clone(), b.clone(), a.clone(), both.clone()]);
        assert_eq!(q, vec![both]);
        // Distinct, unrelated constraints pass through in order.
        let q2 = dedup_query(vec![b.clone(), a.clone()]);
        assert_eq!(q2, vec![b, a]);
    }

    #[test]
    fn propagation_policy_presets() {
        let full = PropagationPolicy::full();
        assert!(full.through_files && full.through_pipes);
        assert!(full.across_threads && full.across_processes);
        let direct = PropagationPolicy::direct_only();
        assert!(!direct.through_files && !direct.across_processes);
    }

    #[test]
    fn symbolize_bytes_creates_named_byte_vars() {
        let mut sx = SymExec::new(MemoryModel::Concretize, PropagationPolicy::full());
        sx.symbolize_bytes(1, 0x100, 3, "inp");
        let mem = sx.smem.get(&1).expect("pid map");
        assert_eq!(mem.len(), 3);
        let sv = mem.get(&0x101).expect("byte present");
        assert_eq!(format!("{}", sv.term), "inp_b1");
        assert_eq!(sv.lvl, 0);
    }

    #[test]
    fn memory_models_compare() {
        assert_ne!(
            MemoryModel::Concretize,
            MemoryModel::SymbolicMap {
                max_indirection: 1,
                region: 128
            }
        );
    }
}
