//! # microbench — a dependency-free benchmark harness
//!
//! The workspace's benches were written against the `criterion` crate. This
//! container builds fully offline, so this shim provides the subset of the
//! criterion API those benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::measurement_time`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark routine is calibrated until one sample
//! takes ≳2 ms (or a single iteration already exceeds that), then `sample_size`
//! samples are timed, capped by `measurement_time`. Mean / median / min
//! per-iteration times are printed to stdout — no statistics engine, no HTML
//! reports, no baseline files.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock cap on the sampling phase of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`, which must call [`Bencher::iter`] exactly once.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

struct Sample {
    per_iter: Vec<Duration>,
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result: Option<Sample>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the iteration count until one sample is ≳2 ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Sample.
        let budget = Instant::now();
        let mut per_iter = Vec::with_capacity(self.sample_size);
        for i in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / iters as u32);
            if i >= 2 && budget.elapsed() > self.measurement_time {
                break;
            }
        }
        self.result = Some(Sample { per_iter });
    }

    fn report(&self, group: &str, id: &str) {
        match &self.result {
            None => println!("  {group}/{id}: no measurement (iter was not called)"),
            Some(s) => {
                let mut sorted = s.per_iter.clone();
                sorted.sort();
                let median = sorted[sorted.len() / 2];
                let min = sorted[0];
                let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
                println!(
                    "  {group}/{id}: median {median:?}  mean {mean:?}  min {min:?}  (n={})",
                    sorted.len()
                );
            }
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
