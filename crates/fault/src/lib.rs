//! # bomblab-fault — deterministic fault injection and crash containment
//!
//! The paper's Table II reserves a whole outcome label (`E`, abnormal exit
//! or timeout) for tools that die on a bomb. This crate gives the
//! reproduction the machinery to *exercise* that label on itself:
//!
//! * **Fault points** — named sites ([`FaultSite`]) compiled into the VM
//!   step loop, the solver entry point, CFG recovery, and the engine's
//!   round loop. Each site calls [`fault_point`], which is a single
//!   relaxed atomic load when no plan is armed (the common case) and a
//!   thread-local counter check when one is.
//! * **Fault plans** — a [`FaultPlan`] is a seeded, serializable list of
//!   `(site, nth, action)` triples: "on the 120th VM step, fail decode",
//!   "on the 3rd solver query, return unknown", "panic on round 2". Plans
//!   derived from the same seed are identical, so a chaos sweep is exactly
//!   reproducible from its seed.
//! * **Containment** — the study runner arms a plan (or nothing) around
//!   each (bomb, profile) cell with [`arm`]/[`disarm`], runs the cell
//!   under `catch_unwind`, and turns any panic — injected or real — into a
//!   well-formed abnormal cell carrying the panic payload, the pipeline
//!   stage reached ([`set_stage`]), and the elapsed wall clock.
//! * **Deadlines** — [`check_deadline`] (called once per VM quantum and
//!   per engine round) panics with a typed [`DeadlineExceeded`] payload
//!   when the armed wall-clock budget is exhausted or an injected
//!   [`FaultAction::Stall`] tripped, so hung cells degrade into `E` cells
//!   instead of hanging the study.
//!
//! When no plan is armed the layer is inert by construction: every fault
//! that fires also bumps a process-global counter
//! ([`global_injected_total`]), which the Table-II snapshot tests pin to
//! zero.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

/// A named code location that can fail on command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The VM's per-instruction step loop.
    VmStep,
    /// The solver's `check` entry point (one hit per query).
    SolverQuery,
    /// Static CFG recovery (one hit per `cfg::build` invocation).
    CfgBuild,
    /// The concolic engine's round loop (one hit per concrete round).
    EngineRound,
    /// Writing a checkpoint-journal record (one hit per append).
    CheckpointWrite,
    /// The atomic rename that publishes a checkpoint or cache file.
    CheckpointRename,
    /// Loading one persistent solver-cache segment from disk.
    CacheSegmentLoad,
}

impl FaultSite {
    /// All sites, in counter-index order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::VmStep,
        FaultSite::SolverQuery,
        FaultSite::CfgBuild,
        FaultSite::EngineRound,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointRename,
        FaultSite::CacheSegmentLoad,
    ];

    /// The durability-layer sites, drawn from by [`FaultPlan::random_io`].
    pub const IO_SITES: [FaultSite; 3] = [
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointRename,
        FaultSite::CacheSegmentLoad,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::VmStep => 0,
            FaultSite::SolverQuery => 1,
            FaultSite::CfgBuild => 2,
            FaultSite::EngineRound => 3,
            FaultSite::CheckpointWrite => 4,
            FaultSite::CheckpointRename => 5,
            FaultSite::CacheSegmentLoad => 6,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultSite::VmStep => "vm_step",
            FaultSite::SolverQuery => "solver_query",
            FaultSite::CfgBuild => "cfg_build",
            FaultSite::EngineRound => "engine_round",
            FaultSite::CheckpointWrite => "checkpoint_write",
            FaultSite::CheckpointRename => "checkpoint_rename",
            FaultSite::CacheSegmentLoad => "cache_segment_load",
        }
    }

    /// The fault actions that make sense at this site (used by
    /// [`FaultPlan::random`] so generated plans are always meaningful).
    pub fn valid_actions(self) -> &'static [FaultAction] {
        match self {
            FaultSite::VmStep => &[
                FaultAction::DecodeError,
                FaultAction::MemFault,
                FaultAction::Panic,
                FaultAction::Stall,
            ],
            FaultSite::SolverQuery => &[FaultAction::Unknown, FaultAction::Panic],
            FaultSite::CfgBuild => &[FaultAction::Panic],
            FaultSite::EngineRound => &[FaultAction::Panic, FaultAction::Stall],
            FaultSite::CheckpointWrite => &[FaultAction::TornWrite, FaultAction::Panic],
            FaultSite::CheckpointRename => &[FaultAction::RenameFail, FaultAction::Panic],
            FaultSite::CacheSegmentLoad => &[FaultAction::ShortRead, FaultAction::BitFlip],
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultSite {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultSite, String> {
        match s {
            "vm_step" => Ok(FaultSite::VmStep),
            "solver_query" => Ok(FaultSite::SolverQuery),
            "cfg_build" => Ok(FaultSite::CfgBuild),
            "engine_round" => Ok(FaultSite::EngineRound),
            "checkpoint_write" => Ok(FaultSite::CheckpointWrite),
            "checkpoint_rename" => Ok(FaultSite::CheckpointRename),
            "cache_segment_load" => Ok(FaultSite::CacheSegmentLoad),
            other => Err(format!("unknown fault site `{other}`")),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Panic at the site (models an internal tool bug).
    Panic,
    /// Mark the cell as stalled: the next [`check_deadline`] treats the
    /// deadline as exceeded (models a hang, deterministically).
    Stall,
    /// The VM fails to decode the current instruction (emulator crash).
    DecodeError,
    /// The VM takes a spurious memory fault (emulator crash).
    MemFault,
    /// The solver gives up on the query (resource exhaustion).
    Unknown,
    /// A checkpoint append writes only a prefix of the record (power loss
    /// mid-write; the journal loader must drop the torn tail).
    TornWrite,
    /// A persistent-cache segment read returns fewer bytes than the file
    /// holds (truncated segment; the checksum must reject it).
    ShortRead,
    /// The tmp-file → final-name rename fails (the published file keeps
    /// its previous contents).
    RenameFail,
    /// One bit of a loaded cache segment is flipped (silent media
    /// corruption; the checksum must reject it).
    BitFlip,
}

impl FaultAction {
    fn name(self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Stall => "stall",
            FaultAction::DecodeError => "decode_error",
            FaultAction::MemFault => "mem_fault",
            FaultAction::Unknown => "unknown",
            FaultAction::TornWrite => "torn_write",
            FaultAction::ShortRead => "short_read",
            FaultAction::RenameFail => "rename_fail",
            FaultAction::BitFlip => "bit_flip",
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultAction {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultAction, String> {
        match s {
            "panic" => Ok(FaultAction::Panic),
            "stall" => Ok(FaultAction::Stall),
            "decode_error" => Ok(FaultAction::DecodeError),
            "mem_fault" => Ok(FaultAction::MemFault),
            "unknown" => Ok(FaultAction::Unknown),
            "torn_write" => Ok(FaultAction::TornWrite),
            "short_read" => Ok(FaultAction::ShortRead),
            "rename_fail" => Ok(FaultAction::RenameFail),
            "bit_flip" => Ok(FaultAction::BitFlip),
            other => Err(format!("unknown fault action `{other}`")),
        }
    }
}

/// One planned failure: the `nth` hit of `site` performs `action`
/// (`nth` is 1-based; counters reset at every [`arm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Which hit of the site fires it (1-based).
    pub nth: u64,
    /// What the site does when it fires.
    pub action: FaultAction,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}={}", self.site, self.nth, self.action)
    }
}

impl std::str::FromStr for Fault {
    type Err = String;
    fn from_str(s: &str) -> Result<Fault, String> {
        let (site_nth, action) = s
            .split_once('=')
            .ok_or_else(|| format!("fault `{s}` is not of the form site@nth=action"))?;
        let (site, nth) = site_nth
            .split_once('@')
            .ok_or_else(|| format!("fault `{s}` is not of the form site@nth=action"))?;
        Ok(Fault {
            site: site.parse()?,
            nth: nth
                .parse()
                .map_err(|_| format!("bad fault count `{nth}`"))?,
            action: action.parse()?,
        })
    }
}

/// A deterministic, serializable chaos schedule: the seed it was derived
/// from plus the list of planned faults. The same plan armed around the
/// same cell always fires the same faults, regardless of thread
/// scheduling, because every site counter is thread-local and reset per
/// [`arm`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The planned faults.
    pub faults: Vec<Fault>,
}

/// Splitmix64 step — the only RNG this crate needs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with a single fault (convenience for tests).
    pub fn single(site: FaultSite, nth: u64, action: FaultAction) -> FaultPlan {
        FaultPlan {
            seed: 0,
            faults: vec![Fault { site, nth, action }],
        }
    }

    /// Derives `k` faults deterministically from `seed`. Sites are drawn
    /// with weights favouring the hot paths (VM steps, solver queries),
    /// actions are drawn from [`FaultSite::valid_actions`], and hit counts
    /// from per-site ranges chosen so faults usually fire on real bombs
    /// (a plan whose counts exceed a cell's activity is a valid no-op).
    pub fn random(seed: u64, k: usize) -> FaultPlan {
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let faults = (0..k)
            .map(|_| {
                let site = match splitmix(&mut state) % 10 {
                    0..=3 => FaultSite::VmStep,
                    4..=6 => FaultSite::SolverQuery,
                    7 => FaultSite::CfgBuild,
                    _ => FaultSite::EngineRound,
                };
                let actions = site.valid_actions();
                let action = actions[(splitmix(&mut state) % actions.len() as u64) as usize];
                let nth = 1 + match site {
                    FaultSite::VmStep => splitmix(&mut state) % 2000,
                    FaultSite::SolverQuery => splitmix(&mut state) % 6,
                    FaultSite::CfgBuild => splitmix(&mut state) % 3,
                    FaultSite::EngineRound => splitmix(&mut state) % 4,
                    // Never drawn above: the durability sites belong to
                    // `random_io`, keeping this generator byte-stable.
                    FaultSite::CheckpointWrite
                    | FaultSite::CheckpointRename
                    | FaultSite::CacheSegmentLoad => splitmix(&mut state) % 2,
                };
                Fault { site, nth, action }
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Derives `k` faults targeting the durability layer (checkpoint
    /// journal appends, atomic renames, cache-segment loads). Kept as a
    /// separate generator so [`FaultPlan::random`]'s byte-stable site
    /// distribution — pinned by the fixed CI chaos seeds — is untouched.
    /// Hit counts are small because a cell performs at most a handful of
    /// journal/cache operations per armed window.
    pub fn random_io(seed: u64, k: usize) -> FaultPlan {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let faults = (0..k)
            .map(|_| {
                let site = FaultSite::IO_SITES[(splitmix(&mut state) % 3) as usize];
                let actions = site.valid_actions();
                let action = actions[(splitmix(&mut state) % actions.len() as u64) as usize];
                let nth = 1 + splitmix(&mut state) % 2;
                Fault { site, nth, action }
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Serializes the plan as a single line: `seed=N site@nth=action ...`.
    pub fn to_text(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for f in &self.faults {
            out.push(' ');
            out.push_str(&f.to_string());
        }
        out
    }

    /// Parses the [`to_text`](FaultPlan::to_text) format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn from_text(s: &str) -> Result<FaultPlan, String> {
        let mut tokens = s.split_whitespace();
        let seed_tok = tokens.next().ok_or("empty fault plan")?;
        let seed = seed_tok
            .strip_prefix("seed=")
            .ok_or_else(|| format!("fault plan must start with seed=N, got `{seed_tok}`"))?
            .parse()
            .map_err(|_| format!("bad seed in `{seed_tok}`"))?;
        let faults = tokens.map(str::parse).collect::<Result<Vec<Fault>, _>>()?;
        Ok(FaultPlan { seed, faults })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Number of threads with an armed containment context. Zero in normal
/// operation, which makes [`fault_point`] a single relaxed load.
static ARMED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of faults that ever fired. The Table-II snapshot
/// pins this to zero: chaos infrastructure must be inert unless armed
/// with a plan.
static TOTAL_INJECTED: AtomicU64 = AtomicU64::new(0);

/// Total faults that have fired in this process, ever. Guaranteed to stay
/// zero as long as no [`FaultPlan`] is armed.
pub fn global_injected_total() -> u64 {
    TOTAL_INJECTED.load(Ordering::Relaxed)
}

struct PlannedFault {
    fault: Fault,
    fired: bool,
}

struct ArmedState {
    faults: Vec<PlannedFault>,
    site_hits: [u64; 7],
    injected: u32,
    fired: Vec<String>,
    stalled: bool,
    deadline: Option<Duration>,
    started: Instant,
    stage: &'static str,
}

thread_local! {
    static ACTIVE: RefCell<Option<ArmedState>> = const { RefCell::new(None) };
    static CONTAINED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Token proving a containment context is armed on this thread. Pass it
/// back to [`disarm`] *after* the `catch_unwind` completes so the
/// collected statistics survive an unwinding cell.
#[must_use = "pass the token to disarm() to collect containment statistics"]
pub struct Armed {
    _private: (),
}

/// What a containment window observed, returned by [`disarm`].
#[derive(Debug, Clone)]
pub struct Containment {
    /// Number of planned faults that fired.
    pub injected: u32,
    /// Human-readable description of each fired fault, in firing order.
    pub fired: Vec<String>,
    /// The last pipeline stage entered via [`set_stage`].
    pub stage: &'static str,
    /// Wall clock between [`arm`] and [`disarm`].
    pub elapsed: Duration,
}

/// Arms a containment context on the current thread: fault counters reset
/// to zero, `plan` (if any) becomes live, and `deadline` starts counting.
/// Panic messages raised while armed are not printed to stderr (the
/// containment layer reports them instead).
///
/// Arm *outside* the `catch_unwind` that wraps the cell, and call
/// [`disarm`] after it, so statistics survive a panicking cell.
pub fn arm(plan: Option<&FaultPlan>, deadline: Option<Duration>) -> Armed {
    install_quiet_hook();
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        debug_assert!(a.is_none(), "fault containment contexts must not nest");
        *a = Some(ArmedState {
            faults: plan
                .map(|p| {
                    p.faults
                        .iter()
                        .map(|&fault| PlannedFault {
                            fault,
                            fired: false,
                        })
                        .collect()
                })
                .unwrap_or_default(),
            site_hits: [0; 7],
            injected: 0,
            fired: Vec::new(),
            stalled: false,
            deadline,
            started: Instant::now(),
            stage: "start",
        });
    });
    CONTAINED.with(|c| c.set(true));
    ARMED_THREADS.fetch_add(1, Ordering::Relaxed);
    Armed { _private: () }
}

/// Disarms the context armed by [`arm`] and returns what it observed.
pub fn disarm(token: Armed) -> Containment {
    let _ = token;
    CONTAINED.with(|c| c.set(false));
    ARMED_THREADS.fetch_sub(1, Ordering::Relaxed);
    ACTIVE.with(|a| {
        let state = a.borrow_mut().take();
        state.map_or(
            Containment {
                injected: 0,
                fired: Vec::new(),
                stage: "start",
                elapsed: Duration::ZERO,
            },
            |s| Containment {
                injected: s.injected,
                fired: s.fired,
                stage: s.stage,
                elapsed: s.started.elapsed(),
            },
        )
    })
}

/// A fault point: sites call this on every hit. Returns the action to
/// perform when a planned fault fires, `None` otherwise. Inert (a single
/// atomic load) when no context is armed anywhere in the process.
#[inline]
pub fn fault_point(site: FaultSite) -> Option<FaultAction> {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    fault_point_slow(site)
}

#[cold]
fn fault_point_slow(site: FaultSite) -> Option<FaultAction> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let state = a.as_mut()?;
        let idx = site.index();
        state.site_hits[idx] += 1;
        let hits = state.site_hits[idx];
        for planned in &mut state.faults {
            if !planned.fired && planned.fault.site == site && planned.fault.nth == hits {
                planned.fired = true;
                state.injected += 1;
                state.fired.push(planned.fault.to_string());
                TOTAL_INJECTED.fetch_add(1, Ordering::Relaxed);
                return Some(planned.fault.action);
            }
        }
        None
    })
}

/// Marks the current cell as stalled: the next [`check_deadline`] fails.
/// Sites perform this for [`FaultAction::Stall`], keeping the "hang"
/// deterministic instead of actually sleeping.
pub fn trip_stall() {
    ACTIVE.with(|a| {
        if let Some(state) = a.borrow_mut().as_mut() {
            state.stalled = true;
        }
    });
}

/// Panic payload raised by [`check_deadline`]. Containment downcasts it
/// for a deterministic diagnostic (the message never embeds the elapsed
/// time, so contained reports stay byte-identical across schedulers).
#[derive(Debug, Clone, Copy)]
pub struct DeadlineExceeded {
    /// The deadline "expired" because an injected stall tripped.
    pub stalled: bool,
    /// Actual wall clock since [`arm`].
    pub elapsed: Duration,
}

impl DeadlineExceeded {
    /// Deterministic one-line description.
    pub fn message(&self) -> &'static str {
        if self.stalled {
            "injected stall exceeded the cell deadline"
        } else {
            "cell wall-clock deadline exceeded"
        }
    }
}

/// Deadline watchdog, called once per VM quantum and per engine round.
/// No-op unless a context is armed on this thread.
///
/// # Panics
///
/// Panics with a [`DeadlineExceeded`] payload when an injected stall has
/// tripped or the armed wall-clock deadline has passed; the study's
/// containment boundary converts it into an abnormal (`E`) cell.
#[inline]
pub fn check_deadline() {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return;
    }
    check_deadline_slow();
}

#[cold]
fn check_deadline_slow() {
    let tripped = ACTIVE.with(|a| {
        let a = a.borrow();
        let state = a.as_ref()?;
        let elapsed = state.started.elapsed();
        if state.stalled || state.deadline.is_some_and(|d| elapsed > d) {
            Some(DeadlineExceeded {
                stalled: state.stalled,
                elapsed,
            })
        } else {
            None
        }
    });
    if let Some(deadline) = tripped {
        std::panic::panic_any(deadline);
    }
}

/// Faults fired since the current [`arm`] (0 when unarmed). The engine
/// copies this into `Evidence` so diagnosis can rank injected failures.
pub fn injected_count() -> u32 {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return 0;
    }
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |s| s.injected))
}

/// Records the pipeline stage the cell is in ("vm", "taint", "symex",
/// "solve", ...). No-op when unarmed; the last stage entered is reported
/// in crash diagnostics.
pub fn set_stage(stage: &'static str) {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(state) = a.borrow_mut().as_mut() {
            state.stage = stage;
        }
    });
}

/// The stage last recorded by [`set_stage`] ("start" right after arming,
/// "" when unarmed).
pub fn current_stage() -> &'static str {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return "";
    }
    ACTIVE.with(|a| a.borrow().as_ref().map_or("", |s| s.stage))
}

/// Extracts a human-readable message from a `catch_unwind` payload:
/// handles `&str`, `String`, and [`DeadlineExceeded`] payloads.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(d) = payload.downcast_ref::<DeadlineExceeded>() {
        d.message().to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace chatter for panics raised while a containment context
/// is armed on the panicking thread. Uncontained panics print as before.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_text_round_trips() {
        let plan = FaultPlan {
            seed: 42,
            faults: vec![
                Fault {
                    site: FaultSite::VmStep,
                    nth: 120,
                    action: FaultAction::DecodeError,
                },
                Fault {
                    site: FaultSite::SolverQuery,
                    nth: 3,
                    action: FaultAction::Unknown,
                },
            ],
        };
        let text = plan.to_text();
        assert_eq!(
            text,
            "seed=42 vm_step@120=decode_error solver_query@3=unknown"
        );
        assert_eq!(FaultPlan::from_text(&text).unwrap(), plan);
        let empty = FaultPlan {
            seed: 7,
            faults: Vec::new(),
        };
        assert_eq!(FaultPlan::from_text(&empty.to_text()).unwrap(), empty);
        assert!(FaultPlan::from_text("vm_step@1=panic").is_err());
        assert!(FaultPlan::from_text("seed=1 vm_step@x=panic").is_err());
        assert!(FaultPlan::from_text("seed=1 nowhere@1=panic").is_err());
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = FaultPlan::random(seed, 4);
            let b = FaultPlan::random(seed, 4);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.faults.len(), 4);
            for f in &a.faults {
                assert!(f.nth >= 1);
                assert!(
                    f.site.valid_actions().contains(&f.action),
                    "{f} pairs an action with a site that cannot perform it"
                );
            }
        }
        assert_ne!(FaultPlan::random(1, 4), FaultPlan::random(2, 4));
    }

    #[test]
    fn io_plans_are_deterministic_and_stick_to_io_sites() {
        for seed in 0..50u64 {
            let a = FaultPlan::random_io(seed, 3);
            assert_eq!(a, FaultPlan::random_io(seed, 3), "seed {seed}");
            assert_eq!(a.faults.len(), 3);
            for f in &a.faults {
                assert!(
                    FaultSite::IO_SITES.contains(&f.site),
                    "{f} targets a non-IO site"
                );
                assert!(f.site.valid_actions().contains(&f.action));
                assert!((1..=2).contains(&f.nth));
            }
        }
        // The compute-site generator is untouched by the IO extension:
        // its plans never draw the durability sites.
        for seed in 0..50u64 {
            for f in &FaultPlan::random(seed, 6).faults {
                assert!(!FaultSite::IO_SITES.contains(&f.site), "{f}");
            }
        }
    }

    #[test]
    fn io_fault_text_round_trips() {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![
                Fault {
                    site: FaultSite::CheckpointWrite,
                    nth: 1,
                    action: FaultAction::TornWrite,
                },
                Fault {
                    site: FaultSite::CheckpointRename,
                    nth: 1,
                    action: FaultAction::RenameFail,
                },
                Fault {
                    site: FaultSite::CacheSegmentLoad,
                    nth: 2,
                    action: FaultAction::BitFlip,
                },
            ],
        };
        let text = plan.to_text();
        assert_eq!(
            text,
            "seed=9 checkpoint_write@1=torn_write checkpoint_rename@1=rename_fail \
             cache_segment_load@2=bit_flip"
        );
        assert_eq!(FaultPlan::from_text(&text).unwrap(), plan);
    }

    #[test]
    fn fault_point_is_inert_when_unarmed() {
        assert_eq!(fault_point(FaultSite::VmStep), None);
        assert_eq!(injected_count(), 0);
        check_deadline(); // must not panic
        set_stage("vm"); // must not record anywhere
        assert_eq!(current_stage(), "");
    }

    #[test]
    fn armed_plan_fires_on_the_nth_hit_only() {
        let plan = FaultPlan::single(FaultSite::SolverQuery, 3, FaultAction::Unknown);
        let token = arm(Some(&plan), None);
        assert_eq!(fault_point(FaultSite::SolverQuery), None);
        assert_eq!(
            fault_point(FaultSite::VmStep),
            None,
            "other sites do not count"
        );
        assert_eq!(fault_point(FaultSite::SolverQuery), None);
        assert_eq!(
            fault_point(FaultSite::SolverQuery),
            Some(FaultAction::Unknown)
        );
        assert_eq!(fault_point(FaultSite::SolverQuery), None, "fires once");
        assert_eq!(injected_count(), 1);
        set_stage("solve");
        let containment = disarm(token);
        assert_eq!(containment.injected, 1);
        assert_eq!(
            containment.fired,
            vec!["solver_query@3=unknown".to_string()]
        );
        assert_eq!(containment.stage, "solve");
        // Fully reset afterwards.
        assert_eq!(fault_point(FaultSite::SolverQuery), None);
    }

    #[test]
    fn counters_reset_per_arm() {
        let plan = FaultPlan::single(FaultSite::EngineRound, 1, FaultAction::Panic);
        for _ in 0..2 {
            let token = arm(Some(&plan), None);
            assert_eq!(
                fault_point(FaultSite::EngineRound),
                Some(FaultAction::Panic),
                "the first hit fires on every fresh arm"
            );
            let _ = disarm(token);
        }
    }

    #[test]
    fn stall_trips_the_deadline_deterministically() {
        let token = arm(None, Some(Duration::from_secs(3600)));
        check_deadline(); // far from the wall-clock deadline: fine
        trip_stall();
        let err = std::panic::catch_unwind(check_deadline).unwrap_err();
        let payload = err
            .downcast_ref::<DeadlineExceeded>()
            .expect("typed deadline payload");
        assert!(payload.stalled);
        assert_eq!(
            panic_message(&*err),
            "injected stall exceeded the cell deadline"
        );
        let _ = disarm(token);
    }

    #[test]
    fn wall_clock_deadline_panics_when_exceeded() {
        let token = arm(None, Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        let err = std::panic::catch_unwind(check_deadline).unwrap_err();
        assert_eq!(panic_message(&*err), "cell wall-clock deadline exceeded");
        let _ = disarm(token);
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let err = std::panic::catch_unwind(|| panic!("plain message")).unwrap_err();
        assert_eq!(panic_message(&*err), "plain message");
        let x = 7;
        let err = std::panic::catch_unwind(|| panic!("formatted {x}")).unwrap_err();
        assert_eq!(panic_message(&*err), "formatted 7");
    }
}
