//! Shared interval domains.
//!
//! Two abstract domains live here so the solver and the static analyzer
//! agree on arithmetic:
//!
//! * [`Range`] — plain inclusive unsigned intervals `[lo, hi]`, used by the
//!   solver as a cheap pre-check that can discharge queries without
//!   bit-blasting.
//! * [`StridedInterval`] — RIC-style strided intervals `{lo + k·stride} ∩
//!   [lo, hi]`, used by value-set analysis to resolve jump-table targets
//!   (where plain intervals would over-approximate an 8-byte-strided table
//!   walk into every intermediate byte).
//!
//! Every operation is *sound*: the result set is a superset of the exact
//! result set. Operations that could wrap silently widen to the full range
//! instead.

#![warn(missing_docs)]

/// An inclusive unsigned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Range {
    /// The full range of a `width`-bit value.
    #[must_use]
    pub fn full(width: u8) -> Range {
        Range {
            lo: 0,
            hi: if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
        }
    }

    /// A single value.
    #[must_use]
    pub fn point(v: u64) -> Range {
        Range { lo: v, hi: v }
    }

    /// Whether the ranges share no value.
    #[must_use]
    pub fn disjoint(&self, other: &Range) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

/// Greatest common divisor; `gcd(0, x) == x` so point strides combine
/// naturally.
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A strided interval: the set `{ lo, lo + stride, …, hi }`.
///
/// Invariants (maintained by [`StridedInterval::new`]):
/// * `lo <= hi`,
/// * `stride == 0` iff `lo == hi` (a point),
/// * otherwise `(hi - lo) % stride == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedInterval {
    /// Smallest element.
    pub lo: u64,
    /// Largest element.
    pub hi: u64,
    /// Distance between consecutive elements (0 for a point).
    pub stride: u64,
}

impl StridedInterval {
    /// Builds a normalized strided interval. `hi` is clamped down to the
    /// last element actually reachable from `lo` by `stride` steps.
    #[must_use]
    pub fn new(lo: u64, hi: u64, stride: u64) -> StridedInterval {
        if hi <= lo {
            return StridedInterval {
                lo,
                hi: lo,
                stride: 0,
            };
        }
        if stride == 0 {
            // A non-point set with no stride information degrades to dense.
            return StridedInterval { lo, hi, stride: 1 };
        }
        let hi = lo + ((hi - lo) / stride) * stride;
        if hi == lo {
            StridedInterval { lo, hi, stride: 0 }
        } else {
            StridedInterval { lo, hi, stride }
        }
    }

    /// A single value.
    #[must_use]
    pub fn point(v: u64) -> StridedInterval {
        StridedInterval {
            lo: v,
            hi: v,
            stride: 0,
        }
    }

    /// The full 64-bit value set.
    #[must_use]
    pub fn top() -> StridedInterval {
        StridedInterval {
            lo: 0,
            hi: u64::MAX,
            stride: 1,
        }
    }

    /// Whether this is the full value set.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == u64::MAX
    }

    /// Whether this is a single value.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// The single value, if this is a point.
    #[must_use]
    pub fn as_point(&self) -> Option<u64> {
        self.is_point().then_some(self.lo)
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn count(&self) -> u64 {
        if self.is_point() {
            1
        } else {
            // Saturating: a near-top set has "effectively infinite" count,
            // and callers only compare counts against small budgets.
            ((self.hi - self.lo) / self.stride.max(1)).saturating_add(1)
        }
    }

    /// Whether `v` is in the set.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        if v < self.lo || v > self.hi {
            return false;
        }
        self.stride == 0 || (v - self.lo).is_multiple_of(self.stride)
    }

    /// Whether the concretization of the two sets can share an element.
    /// Conservative: uses bounds only, so aligned-but-interleaved sets
    /// still count as overlapping.
    #[must_use]
    pub fn may_overlap(&self, other: &StridedInterval) -> bool {
        !(self.hi < other.lo || other.hi < self.lo)
    }

    /// Enumerates the elements if there are at most `max` of them.
    #[must_use]
    pub fn enumerate(&self, max: u64) -> Option<Vec<u64>> {
        if self.count() > max {
            return None;
        }
        let mut out = Vec::with_capacity(self.count() as usize);
        let mut v = self.lo;
        loop {
            out.push(v);
            if v == self.hi {
                break;
            }
            v += self.stride;
        }
        Some(out)
    }

    /// Least upper bound of the two sets.
    #[must_use]
    pub fn join(&self, other: &StridedInterval) -> StridedInterval {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        // Every element of either set is ≡ self.lo modulo this stride.
        let stride = gcd(gcd(self.stride, other.stride), self.lo.abs_diff(other.lo));
        StridedInterval::new(lo, hi, stride)
    }

    /// Widened least upper bound for fixpoint acceleration: any bound that
    /// grew jumps straight to the extreme.
    #[must_use]
    pub fn widen(&self, next: &StridedInterval) -> StridedInterval {
        let lo = if next.lo < self.lo { 0 } else { self.lo };
        let hi = if next.hi > self.hi { u64::MAX } else { self.hi };
        if lo == self.lo && hi == self.hi {
            self.join(next)
        } else {
            StridedInterval::new(lo, hi, 1)
        }
    }

    /// Abstract addition; widens to top on potential wraparound.
    #[must_use]
    pub fn add(&self, other: &StridedInterval) -> StridedInterval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => StridedInterval::new(lo, hi, gcd(self.stride, other.stride)),
            _ => StridedInterval::top(),
        }
    }

    /// Abstract subtraction; only precise when provably non-wrapping.
    #[must_use]
    pub fn sub(&self, other: &StridedInterval) -> StridedInterval {
        if self.lo >= other.hi {
            StridedInterval::new(
                self.lo - other.hi,
                self.hi - other.lo,
                gcd(self.stride, other.stride),
            )
        } else {
            StridedInterval::top()
        }
    }

    /// Abstract multiplication; precise when one side is a point.
    #[must_use]
    pub fn mul(&self, other: &StridedInterval) -> StridedInterval {
        let (si, k) = match (self.as_point(), other.as_point()) {
            (Some(k), _) => (other, k),
            (_, Some(k)) => (self, k),
            _ => {
                return match (self.hi.checked_mul(other.hi), self.lo.checked_mul(other.lo)) {
                    (Some(hi), Some(lo)) => StridedInterval::new(lo, hi, 1),
                    _ => StridedInterval::top(),
                }
            }
        };
        if k == 0 {
            return StridedInterval::point(0);
        }
        match (
            si.lo.checked_mul(k),
            si.hi.checked_mul(k),
            si.stride.checked_mul(k),
        ) {
            (Some(lo), Some(hi), Some(stride)) => StridedInterval::new(lo, hi, stride),
            _ => StridedInterval::top(),
        }
    }

    /// Abstract left shift by a constant.
    #[must_use]
    pub fn shl(&self, k: u64) -> StridedInterval {
        if k >= 64 {
            return StridedInterval::top();
        }
        self.mul(&StridedInterval::point(1u64 << k))
    }

    /// Abstract logical right shift by a constant. Keeps the stride when
    /// shifting preserves alignment.
    #[must_use]
    pub fn shr(&self, k: u64) -> StridedInterval {
        let k = k.min(63);
        let stride = if self.stride > 0 && self.stride.is_multiple_of(1u64 << k) {
            self.stride >> k
        } else {
            1
        };
        StridedInterval::new(self.lo >> k, self.hi >> k, stride)
    }

    /// Abstract bitwise AND. Precise for power-of-two masks that the set
    /// already fits inside; otherwise bounds by the smaller maximum.
    #[must_use]
    pub fn and(&self, other: &StridedInterval) -> StridedInterval {
        if let Some(m) = other.as_point() {
            return self.and_mask(m);
        }
        if let Some(m) = self.as_point() {
            return other.and_mask(m);
        }
        StridedInterval::new(0, self.hi.min(other.hi), 1)
    }

    fn and_mask(&self, m: u64) -> StridedInterval {
        if m == u64::MAX {
            return *self;
        }
        if (m.wrapping_add(1)) & m == 0 {
            // Low-bit mask: identity if the set already fits below it.
            if self.hi <= m {
                return *self;
            }
            return StridedInterval::new(0, m, 1);
        }
        StridedInterval::new(0, m, 1)
    }

    /// Abstract bitwise OR: bounded below by the larger minimum.
    #[must_use]
    pub fn or(&self, other: &StridedInterval) -> StridedInterval {
        if let (Some(a), Some(b)) = (self.as_point(), other.as_point()) {
            return StridedInterval::point(a | b);
        }
        StridedInterval::new(self.lo.max(other.lo), u64::MAX, 1)
    }

    /// Abstract bitwise XOR: precise only for points.
    #[must_use]
    pub fn xor(&self, other: &StridedInterval) -> StridedInterval {
        if let (Some(a), Some(b)) = (self.as_point(), other.as_point()) {
            return StridedInterval::point(a ^ b);
        }
        StridedInterval::top()
    }

    /// Abstract unsigned division.
    #[must_use]
    pub fn udiv(&self, other: &StridedInterval) -> StridedInterval {
        if other.lo == 0 {
            // The BVM convention is x / 0 = trap; bounds stay loose.
            return StridedInterval::new(0, self.hi, 1);
        }
        StridedInterval::new(self.lo / other.hi, self.hi / other.lo, 1)
    }

    /// Abstract unsigned remainder: `x % m < m` when `m` cannot be zero.
    #[must_use]
    pub fn urem(&self, other: &StridedInterval) -> StridedInterval {
        let hi = if other.lo > 0 {
            (other.hi - 1).min(self.hi)
        } else {
            self.hi
        };
        StridedInterval::new(0, hi, 1)
    }
}

impl std::fmt::Display for StridedInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else if self.is_point() {
            write!(f, "{:#x}", self.lo)
        } else {
            write!(f, "{:#x}..={:#x}/{}", self.lo, self.hi, self.stride)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        assert_eq!(Range::full(8), Range { lo: 0, hi: 255 });
        assert_eq!(Range::full(64).hi, u64::MAX);
        assert!(Range::point(3).disjoint(&Range::point(4)));
        assert!(!Range { lo: 0, hi: 5 }.disjoint(&Range { lo: 5, hi: 9 }));
    }

    #[test]
    fn si_normalization() {
        let si = StridedInterval::new(0x1000, 0x103d, 8);
        assert_eq!(si.hi, 0x1038); // clamped to last reachable element
        assert_eq!(si.count(), 8);
        assert!(si.contains(0x1008));
        assert!(!si.contains(0x1009));
        assert_eq!(StridedInterval::new(5, 5, 8), StridedInterval::point(5));
    }

    #[test]
    fn si_jump_table_shape() {
        // andi a0, a0, 7 ; shli a0, a0, 3 ; add t0, base, a0 ; jr t0
        let idx = StridedInterval::top().and(&StridedInterval::point(7));
        assert_eq!(idx, StridedInterval::new(0, 7, 1));
        let scaled = idx.shl(3);
        assert_eq!(scaled, StridedInterval::new(0, 56, 8));
        let addr = StridedInterval::point(0x1100).add(&scaled);
        assert_eq!(addr, StridedInterval::new(0x1100, 0x1138, 8));
        let targets = addr.enumerate(64).expect("small");
        assert_eq!(targets.len(), 8);
        assert_eq!(targets[1], 0x1108);
    }

    #[test]
    fn si_join_and_widen() {
        let a = StridedInterval::point(0x10);
        let b = StridedInterval::point(0x30);
        let j = a.join(&b);
        assert_eq!(j, StridedInterval::new(0x10, 0x30, 0x20));
        assert!(j.contains(0x10) && j.contains(0x30) && !j.contains(0x18));
        let grown = StridedInterval::new(0x10, 0x40, 0x10);
        let w = j.widen(&grown);
        assert_eq!(w.hi, u64::MAX); // hi grew -> widened
        assert_eq!(w.lo, 0x10); // lo stable -> kept
    }

    #[test]
    fn si_soundness_on_overflow() {
        let big = StridedInterval::new(u64::MAX - 4, u64::MAX, 1);
        assert!(big.add(&StridedInterval::point(8)).is_top());
        assert!(big.mul(&StridedInterval::point(3)).is_top());
        assert!(StridedInterval::point(1)
            .sub(&StridedInterval::point(2))
            .is_top());
    }

    #[test]
    fn si_masks_and_rem() {
        let top = StridedInterval::top();
        assert_eq!(top.and(&StridedInterval::point(0xFF)).hi, 0xFF);
        assert_eq!(top.urem(&StridedInterval::point(10)).hi, 9);
        // URem with a possibly-zero divisor keeps the dividend bound
        // (matches the solver's URem(a, 0) = a convention).
        let d = StridedInterval::new(0, 4, 1);
        assert_eq!(StridedInterval::new(0, 100, 1).urem(&d).hi, 100);
    }

    #[test]
    fn si_shr_keeps_alignment() {
        let si = StridedInterval::new(0x100, 0x140, 0x10);
        assert_eq!(si.shr(4), StridedInterval::new(0x10, 0x14, 1));
        let aligned = StridedInterval::new(0, 64, 16);
        assert_eq!(aligned.shr(2), StridedInterval::new(0, 16, 4));
    }
}
