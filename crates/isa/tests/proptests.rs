//! Property tests for the ISA: encode/decode and assembler round-trips.

use bomblab_isa::asm::assemble;
use bomblab_isa::{FReg, Insn, Opcode, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("in range"))
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..16).prop_map(|i| FReg::new(i).expect("in range"))
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu3_ops = prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::Sub),
        Just(Opcode::Mul),
        Just(Opcode::Divu),
        Just(Opcode::Divs),
        Just(Opcode::Remu),
        Just(Opcode::Rems),
        Just(Opcode::And),
        Just(Opcode::Or),
        Just(Opcode::Xor),
        Just(Opcode::Shl),
        Just(Opcode::Shru),
        Just(Opcode::Shrs),
        Just(Opcode::Slt),
        Just(Opcode::Sltu),
    ];
    let alui_ops = prop_oneof![
        Just(Opcode::AddI),
        Just(Opcode::MulI),
        Just(Opcode::AndI),
        Just(Opcode::OrI),
        Just(Opcode::XorI),
        Just(Opcode::ShlI),
        Just(Opcode::ShruI),
        Just(Opcode::ShrsI),
        Just(Opcode::SltI),
        Just(Opcode::SltuI),
    ];
    let load_ops = prop_oneof![
        Just(Opcode::Lb),
        Just(Opcode::Lbu),
        Just(Opcode::Lh),
        Just(Opcode::Lhu),
        Just(Opcode::Lw),
        Just(Opcode::Lwu),
        Just(Opcode::Ld),
    ];
    let store_ops = prop_oneof![
        Just(Opcode::Sb),
        Just(Opcode::Sh),
        Just(Opcode::Sw),
        Just(Opcode::Sd),
    ];
    let branch_ops = prop_oneof![
        Just(Opcode::Beq),
        Just(Opcode::Bne),
        Just(Opcode::Blt),
        Just(Opcode::Bge),
        Just(Opcode::Bltu),
        Just(Opcode::Bgeu),
    ];
    prop_oneof![
        (alu3_ops, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs, rt)| Insn::Alu3 {
            op,
            rd,
            rs,
            rt
        }),
        (alui_ops, arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs, imm)| Insn::AluI {
            op,
            rd,
            rs,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Insn::Mov { rd, rs }),
        (arb_reg(), any::<u64>()).prop_map(|(rd, imm)| Insn::Li { rd, imm }),
        (load_ops, arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, base, off)| Insn::Load {
            op,
            rd,
            base,
            off
        }),
        (store_ops, arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(op, src, base, off)| Insn::Store { op, src, base, off }),
        arb_reg().prop_map(|rs| Insn::Push { rs }),
        arb_reg().prop_map(|rd| Insn::Pop { rd }),
        (branch_ops, arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(op, rs, rt, rel)| Insn::Branch { op, rs, rt, rel }),
        any::<i32>().prop_map(|rel| Insn::Jmp { rel }),
        arb_reg().prop_map(|rs| Insn::Jr { rs }),
        any::<i32>().prop_map(|rel| Insn::Call { rel }),
        arb_reg().prop_map(|rs| Insn::Callr { rs }),
        Just(Insn::Ret),
        Just(Insn::Sys),
        Just(Insn::Nop),
        Just(Insn::Halt),
        (arb_freg(), arb_freg(), arb_freg()).prop_map(|(fd, fs, ft)| Insn::FAlu3 {
            op: Opcode::FMul,
            fd,
            fs,
            ft
        }),
        (arb_freg(), any::<u64>()).prop_map(|(fd, bits)| Insn::FLi { fd, bits }),
        (arb_freg(), arb_reg()).prop_map(|(fd, rs)| Insn::FCvtSiToD { fd, rs }),
        (arb_reg(), arb_freg()).prop_map(|(rd, fs)| Insn::FCvtDToSi { rd, fs }),
        (arb_freg(), arb_freg(), any::<i32>()).prop_map(|(fs, ft, rel)| Insn::FBranch {
            op: Opcode::FBle,
            fs,
            ft,
            rel
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(insn in arb_insn()) {
        let mut buf = Vec::new();
        insn.encode(&mut buf);
        prop_assert_eq!(buf.len(), insn.len());
        let (decoded, len) = Insn::decode(&buf).expect("decodes");
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, buf.len());
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = Insn::decode(&bytes);
    }

    #[test]
    fn reencoding_decoded_bytes_reproduces_the_prefix(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        // Decoding is a partial inverse of encoding: whenever arbitrary
        // bytes decode, re-encoding the instruction must reproduce the
        // exact consumed prefix (no don't-care bits, no aliased forms).
        // The static analyzer's recursive-descent disassembly relies on
        // this to rebuild byte-accurate listings.
        if let Ok((insn, len)) = Insn::decode(&bytes) {
            let mut buf = Vec::new();
            insn.encode(&mut buf);
            prop_assert_eq!(buf.len(), len);
            prop_assert_eq!(&buf[..], &bytes[..len]);
        }
    }

    #[test]
    fn instruction_streams_decode_in_sequence(insns in proptest::collection::vec(arb_insn(), 1..32)) {
        let mut buf = Vec::new();
        for i in &insns {
            i.encode(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (insn, len) = Insn::decode(&buf[pos..]).expect("stream decodes");
            decoded.push(insn);
            pos += len;
        }
        prop_assert_eq!(decoded, insns);
    }

    #[test]
    fn assembler_accepts_generated_immediates(value in any::<i32>(), shift in 0u8..64) {
        let src = format!("addi a0, a1, {value}\nshli a2, a3, {shift}\n");
        let obj = assemble(&src).expect("assembles");
        let (insn, _) = Insn::decode(&obj.text).expect("decodes");
        match insn {
            Insn::AluI { imm, .. } => prop_assert_eq!(imm, value),
            other => prop_assert!(false, "unexpected {}", other),
        }
    }

    #[test]
    fn li_round_trips_any_u64(value in any::<u64>()) {
        let src = format!("li t0, {value}");
        let obj = assemble(&src).expect("assembles");
        let (insn, _) = Insn::decode(&obj.text).expect("decodes");
        prop_assert_eq!(
            insn,
            Insn::Li { rd: Reg::parse("t0").expect("t0"), imm: value }
        );
    }
}
