//! # bomblab-isa — the BVM instruction set architecture
//!
//! BVM is a small 64-bit RISC-style ISA designed as a stand-in for x86_64 in
//! the DSN'17 logic-bombs study. It deliberately includes every instruction
//! class the paper's challenges hinge on:
//!
//! * explicit `push`/`pop` stack traffic (covert propagation),
//! * register-indirect jumps `jr` (symbolic jump),
//! * base+offset loads/stores (symbolic arrays),
//! * a `sys` instruction with a register-selected syscall number
//!   (contextual symbolic values),
//! * IEEE-754 double instructions including the `cvt.si2d` conversion, the
//!   BVM analogue of x86 `cvtsi2sd` that real tools fail to lift (`Es1`),
//! * hardware traps (divide by zero) that vector to a user handler.
//!
//! The crate provides:
//!
//! * [`Insn`] — the decoded instruction type, with a variable-length binary
//!   encoding ([`Insn::encode`], [`decode`](Insn::decode)),
//! * [`asm::assemble`] — a two-pass text assembler producing relocatable
//!   [`obj::Object`]s,
//! * [`link`] — a static/dynamic linker producing executable [`image::Image`]s,
//! * [`image`] — the executable format and its memory-layout constants.
//!
//! ## Example
//!
//! ```
//! use bomblab_isa::asm::assemble;
//! use bomblab_isa::link::Linker;
//!
//! let obj = assemble(
//!     r#"
//!     .text
//!     .global _start
//! _start:
//!     li   a0, 42
//!     li   r7, 0          # SYS_EXIT
//!     sys
//!     "#,
//! )?;
//! let image = Linker::new().add_object(obj).link()?;
//! assert!(image.text.len() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Crash-containment surface: assembling/linking untrusted text must fail
// with typed errors (`AsmError`, `LinkError`, `ImageError`), never unwind.
// The workspace lint table cannot be extended per crate, so the stricter
// policy lives here; CI's `-D warnings` promotes it.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod asm;
pub mod disasm;
pub mod image;
pub mod insn;
pub mod link;
pub mod obj;
pub mod reg;

pub use insn::{DecodeError, Insn, InsnClass, Opcode};
pub use reg::{FReg, Reg};

/// Syscall numbers understood by the simulated OS in `bomblab-vm`.
///
/// They live in the ISA crate because assembly sources reference them and
/// the lifter models their effects.
pub mod sys {
    /// Terminate the current process; `a0` = exit code.
    pub const EXIT: u64 = 0;
    /// `write(fd, buf, len) -> written`.
    pub const WRITE: u64 = 1;
    /// `read(fd, buf, len) -> read`.
    pub const READ: u64 = 2;
    /// `open(path, flags) -> fd | -1`. Flags: 0 read, 1 write/create, 2 rw.
    pub const OPEN: u64 = 3;
    /// `close(fd) -> 0 | -1`.
    pub const CLOSE: u64 = 4;
    /// `unlink(path) -> 0 | -1`.
    pub const UNLINK: u64 = 5;
    /// `time() -> seconds since the simulated epoch`.
    pub const TIME: u64 = 6;
    /// `getpid() -> pid`.
    pub const GETPID: u64 = 7;
    /// `fork() -> 0 in child, child pid in parent`.
    pub const FORK: u64 = 8;
    /// `waitpid(pid) -> exit status`.
    pub const WAITPID: u64 = 9;
    /// `pipe(fds_ptr) -> 0`; writes two i64 fds (read end, write end).
    pub const PIPE: u64 = 10;
    /// `thread_spawn(entry, arg) -> tid`.
    pub const THREAD_SPAWN: u64 = 11;
    /// `thread_join(tid) -> thread return value`.
    pub const THREAD_JOIN: u64 = 12;
    /// `net_get(url, buf, len) -> bytes received | -1` (simulated web).
    pub const NET_GET: u64 = 13;
    /// `set_trap_handler(addr) -> 0`; installs the hardware-trap handler.
    pub const SET_TRAP_HANDLER: u64 = 14;
    /// `lseek(fd, off, whence) -> new offset | -1`.
    pub const LSEEK: u64 = 15;
    /// `getuid() -> uid` (fixed; exists so bombs can use "another" syscall).
    pub const GETUID: u64 = 16;
    /// Terminate the calling thread; `a0` = thread return value.
    pub const THREAD_EXIT: u64 = 17;
    /// Number of defined syscalls (valid numbers are `0..NUM_SYSCALLS`).
    pub const NUM_SYSCALLS: u64 = 18;
}

/// Hardware trap causes, delivered to the installed trap handler in `r26`.
pub mod trap {
    /// Integer division by zero.
    pub const DIV_ZERO: u64 = 1;
    /// Memory access to an unmapped or protected address.
    pub const BAD_MEM: u64 = 2;
    /// Undecodable or illegal instruction.
    pub const BAD_INSN: u64 = 3;
}

#[cfg(test)]
mod tests {
    #[test]
    fn syscall_numbers_are_dense() {
        // NUM_SYSCALLS acts as a bound for the contextual-syscall bomb; keep
        // it consistent with the largest defined number.
        assert_eq!(super::sys::NUM_SYSCALLS, super::sys::THREAD_EXIT + 1);
    }
}
