//! Instruction type, opcodes, and the variable-length binary encoding.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Binary opcode values.
///
/// The numeric values are stable: they are the first byte of every encoded
/// instruction and part of the BVM executable format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variants mirror `Insn`, documented there
pub enum Opcode {
    // Integer register-register ALU.
    Add = 0x01,
    Sub = 0x02,
    Mul = 0x03,
    Divu = 0x04,
    Divs = 0x05,
    Remu = 0x06,
    Rems = 0x07,
    And = 0x08,
    Or = 0x09,
    Xor = 0x0A,
    Shl = 0x0B,
    Shru = 0x0C,
    Shrs = 0x0D,
    Slt = 0x0E,
    Sltu = 0x0F,
    // Integer register-immediate ALU.
    AddI = 0x10,
    MulI = 0x11,
    AndI = 0x12,
    OrI = 0x13,
    XorI = 0x14,
    ShlI = 0x15,
    ShruI = 0x16,
    ShrsI = 0x17,
    SltI = 0x18,
    SltuI = 0x19,
    // Moves.
    Mov = 0x1A,
    Not = 0x1B,
    Neg = 0x1C,
    Li = 0x1D,
    // Loads.
    Lb = 0x20,
    Lbu = 0x21,
    Lh = 0x22,
    Lhu = 0x23,
    Lw = 0x24,
    Lwu = 0x25,
    Ld = 0x26,
    // Stores.
    Sb = 0x28,
    Sh = 0x29,
    Sw = 0x2A,
    Sd = 0x2B,
    // Stack.
    Push = 0x2C,
    Pop = 0x2D,
    // Conditional branches.
    Beq = 0x30,
    Bne = 0x31,
    Blt = 0x32,
    Bge = 0x33,
    Bltu = 0x34,
    Bgeu = 0x35,
    // Jumps and calls.
    Jmp = 0x38,
    Jr = 0x39,
    Call = 0x3A,
    Callr = 0x3B,
    Ret = 0x3C,
    // System.
    Sys = 0x40,
    Nop = 0x41,
    Halt = 0x42,
    // Floating point (double precision).
    FAdd = 0x50,
    FSub = 0x51,
    FMul = 0x52,
    FDiv = 0x53,
    FSqrt = 0x54,
    FNeg = 0x55,
    FMov = 0x56,
    FLd = 0x57,
    FSt = 0x58,
    FLi = 0x59,
    FCvtSiToD = 0x5A,
    FCvtDToSi = 0x5B,
    FBeq = 0x5C,
    FBlt = 0x5D,
    FBle = 0x5E,
    FBits = 0x5F,
    FFromBits = 0x60,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x01 => Add,
            0x02 => Sub,
            0x03 => Mul,
            0x04 => Divu,
            0x05 => Divs,
            0x06 => Remu,
            0x07 => Rems,
            0x08 => And,
            0x09 => Or,
            0x0A => Xor,
            0x0B => Shl,
            0x0C => Shru,
            0x0D => Shrs,
            0x0E => Slt,
            0x0F => Sltu,
            0x10 => AddI,
            0x11 => MulI,
            0x12 => AndI,
            0x13 => OrI,
            0x14 => XorI,
            0x15 => ShlI,
            0x16 => ShruI,
            0x17 => ShrsI,
            0x18 => SltI,
            0x19 => SltuI,
            0x1A => Mov,
            0x1B => Not,
            0x1C => Neg,
            0x1D => Li,
            0x20 => Lb,
            0x21 => Lbu,
            0x22 => Lh,
            0x23 => Lhu,
            0x24 => Lw,
            0x25 => Lwu,
            0x26 => Ld,
            0x28 => Sb,
            0x29 => Sh,
            0x2A => Sw,
            0x2B => Sd,
            0x2C => Push,
            0x2D => Pop,
            0x30 => Beq,
            0x31 => Bne,
            0x32 => Blt,
            0x33 => Bge,
            0x34 => Bltu,
            0x35 => Bgeu,
            0x38 => Jmp,
            0x39 => Jr,
            0x3A => Call,
            0x3B => Callr,
            0x3C => Ret,
            0x40 => Sys,
            0x41 => Nop,
            0x42 => Halt,
            0x50 => FAdd,
            0x51 => FSub,
            0x52 => FMul,
            0x53 => FDiv,
            0x54 => FSqrt,
            0x55 => FNeg,
            0x56 => FMov,
            0x57 => FLd,
            0x58 => FSt,
            0x59 => FLi,
            0x5A => FCvtSiToD,
            0x5B => FCvtDToSi,
            0x5C => FBeq,
            0x5D => FBlt,
            0x5E => FBle,
            0x5F => FBits,
            0x60 => FFromBits,
            _ => return None,
        })
    }
}

/// Coarse instruction classification, used by lifter support matrices and
/// trace statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnClass {
    /// Add/sub/logic/shift/compare, register or immediate forms, and moves.
    IntAlu,
    /// Multiply.
    Mul,
    /// Divide / remainder (can trap).
    Div,
    /// Loads and stores.
    Mem,
    /// `push` / `pop`.
    Stack,
    /// Conditional branches on integer registers.
    Branch,
    /// Direct jump.
    Jump,
    /// Register-indirect jump (`jr`).
    IndirectJump,
    /// Direct or indirect call, and `ret`.
    Call,
    /// `sys`.
    Sys,
    /// Floating-point arithmetic and moves.
    FpArith,
    /// Int↔float conversions (`cvt.si2d` / `cvt.d2si`).
    FpConvert,
    /// Branches on floating-point comparisons.
    FpBranch,
    /// Floating-point loads/stores and bit moves.
    FpMem,
    /// `nop` / `halt`.
    Misc,
}

/// A decoded BVM instruction.
///
/// Branch and jump targets are encoded pc-relative; the `rel` fields are
/// byte offsets from the *start of this instruction*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// `rd = rs <op> rt` for the register-register ALU group.
    Alu3 {
        /// Operation; must be one of the R3 ALU opcodes.
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs <op> imm` for the register-immediate ALU group.
    AluI {
        /// Operation; must be one of the RI ALU opcodes.
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Immediate, sign-extended to 64 bits.
        imm: i32,
    },
    /// `rd = rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = !rs` (bitwise not).
    Not {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = -rs` (two's complement).
    Neg {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = imm` (full 64-bit immediate).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Memory load: `rd = width-extend(mem[rs + off])`.
    Load {
        /// Load opcode (selects width and sign extension).
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// Memory store: `mem[base + off] = truncate(src)`.
    Store {
        /// Store opcode (selects width).
        op: Opcode,
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// `sp -= 8; mem[sp] = rs`.
    Push {
        /// Value to push.
        rs: Reg,
    },
    /// `rd = mem[sp]; sp += 8`.
    Pop {
        /// Destination.
        rd: Reg,
    },
    /// Conditional branch: `if rs <cond> rt { pc += rel }`.
    Branch {
        /// Branch opcode (selects the comparison).
        op: Opcode,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// Relative target (from instruction start).
        rel: i32,
    },
    /// Unconditional direct jump: `pc += rel`.
    Jmp {
        /// Relative target.
        rel: i32,
    },
    /// Register-indirect jump: `pc = rs`.
    Jr {
        /// Target address register.
        rs: Reg,
    },
    /// Direct call: `ra = next_pc; pc += rel`.
    Call {
        /// Relative target.
        rel: i32,
    },
    /// Indirect call: `ra = next_pc; pc = rs`.
    Callr {
        /// Target address register.
        rs: Reg,
    },
    /// Return: `pc = ra`.
    Ret,
    /// System call; number in `sv`, args in `a0..a5`, result in `a0`.
    Sys,
    /// No operation.
    Nop,
    /// Stop the machine immediately with exit code `a0`.
    Halt,
    /// Floating-point `fd = fs <op> ft`.
    FAlu3 {
        /// Operation; one of `FAdd/FSub/FMul/FDiv`.
        op: Opcode,
        /// Destination.
        fd: FReg,
        /// Left operand.
        fs: FReg,
        /// Right operand.
        ft: FReg,
    },
    /// Floating-point unary: `fd = <op> fs` (`FSqrt`, `FNeg`, `FMov`).
    FAlu2 {
        /// Operation.
        op: Opcode,
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
    },
    /// `fd = mem[base + off]` (8 bytes, raw bits).
    FLd {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// `mem[base + off] = fs` (8 bytes, raw bits).
    FSt {
        /// Value to store.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// `fd = f64::from_bits(bits)`.
    FLi {
        /// Destination.
        fd: FReg,
        /// Raw IEEE-754 bits.
        bits: u64,
    },
    /// `fd = rs as i64 as f64` — the BVM analogue of x86 `cvtsi2sd`.
    FCvtSiToD {
        /// Destination.
        fd: FReg,
        /// Integer source.
        rs: Reg,
    },
    /// `rd = fs as i64` (truncating) — the analogue of `cvttsd2si`.
    FCvtDToSi {
        /// Integer destination.
        rd: Reg,
        /// Source.
        fs: FReg,
    },
    /// Floating-point branch: `if fs <cond> ft { pc += rel }`.
    FBranch {
        /// Branch opcode (`FBeq`, `FBlt`, `FBle`).
        op: Opcode,
        /// Left operand.
        fs: FReg,
        /// Right operand.
        ft: FReg,
        /// Relative target.
        rel: i32,
    },
    /// `rd = fs.to_bits()`.
    FBits {
        /// Integer destination.
        rd: Reg,
        /// Source.
        fs: FReg,
    },
    /// `fd = f64::from_bits(rs)`.
    FFromBits {
        /// Destination.
        fd: FReg,
        /// Integer source (raw bits).
        rs: Reg,
    },
}

/// Error returned when decoding malformed instruction bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended inside an instruction.
    Truncated,
    /// The first byte is not a valid opcode.
    BadOpcode(u8),
    /// An operand byte encodes an out-of-range register.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register operand {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Insn {
    /// The opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        use Insn::*;
        match *self {
            Alu3 { op, .. } | AluI { op, .. } => op,
            Mov { .. } => Opcode::Mov,
            Not { .. } => Opcode::Not,
            Neg { .. } => Opcode::Neg,
            Li { .. } => Opcode::Li,
            Load { op, .. } | Store { op, .. } => op,
            Push { .. } => Opcode::Push,
            Pop { .. } => Opcode::Pop,
            Branch { op, .. } => op,
            Jmp { .. } => Opcode::Jmp,
            Jr { .. } => Opcode::Jr,
            Call { .. } => Opcode::Call,
            Callr { .. } => Opcode::Callr,
            Ret => Opcode::Ret,
            Sys => Opcode::Sys,
            Nop => Opcode::Nop,
            Halt => Opcode::Halt,
            FAlu3 { op, .. } | FAlu2 { op, .. } => op,
            FLd { .. } => Opcode::FLd,
            FSt { .. } => Opcode::FSt,
            FLi { .. } => Opcode::FLi,
            FCvtSiToD { .. } => Opcode::FCvtSiToD,
            FCvtDToSi { .. } => Opcode::FCvtDToSi,
            FBranch { op, .. } => op,
            FBits { .. } => Opcode::FBits,
            FFromBits { .. } => Opcode::FFromBits,
        }
    }

    /// The coarse class of this instruction (for support matrices and
    /// statistics).
    pub fn class(&self) -> InsnClass {
        use Opcode::*;
        match self.opcode() {
            Add | Sub | And | Or | Xor | Shl | Shru | Shrs | Slt | Sltu | AddI | AndI | OrI
            | XorI | ShlI | ShruI | ShrsI | SltI | SltuI | Mov | Not | Neg | Li => {
                InsnClass::IntAlu
            }
            Mul | MulI => InsnClass::Mul,
            Divu | Divs | Remu | Rems => InsnClass::Div,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Sb | Sh | Sw | Sd => InsnClass::Mem,
            Push | Pop => InsnClass::Stack,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => InsnClass::Branch,
            Jmp => InsnClass::Jump,
            Jr => InsnClass::IndirectJump,
            Call | Callr | Ret => InsnClass::Call,
            Sys => InsnClass::Sys,
            FAdd | FSub | FMul | FDiv | FSqrt | FNeg | FMov => InsnClass::FpArith,
            FCvtSiToD | FCvtDToSi => InsnClass::FpConvert,
            FBeq | FBlt | FBle => InsnClass::FpBranch,
            FLd | FSt | FLi | FBits | FFromBits => InsnClass::FpMem,
            Nop | Halt => InsnClass::Misc,
        }
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        use Insn::*;
        match self {
            Alu3 { .. } | FAlu3 { .. } => 4,
            AluI { .. } => 7,
            Mov { .. } | Not { .. } | Neg { .. } | FAlu2 { .. } => 3,
            Li { .. } | FLi { .. } => 10,
            Load { .. } | Store { .. } | FLd { .. } | FSt { .. } => 7,
            Push { .. } | Pop { .. } => 2,
            Branch { .. } | FBranch { .. } => 7,
            Jmp { .. } | Call { .. } => 5,
            Jr { .. } | Callr { .. } => 2,
            Ret | Sys | Nop | Halt => 1,
            FCvtSiToD { .. } | FCvtDToSi { .. } | FBits { .. } | FFromBits { .. } => 3,
        }
    }

    /// `true` only for the zero-byte case, which cannot happen; provided to
    /// satisfy the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the instruction ends a basic block (branch, jump, call,
    /// return, halt).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.class(),
            InsnClass::Branch
                | InsnClass::Jump
                | InsnClass::IndirectJump
                | InsnClass::Call
                | InsnClass::FpBranch
        ) || matches!(self, Insn::Halt)
    }

    /// Appends the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use Insn::*;
        out.push(self.opcode() as u8);
        match *self {
            Alu3 { rd, rs, rt, .. } => {
                out.push(rd.index() as u8);
                out.push(rs.index() as u8);
                out.push(rt.index() as u8);
            }
            AluI { rd, rs, imm, .. } => {
                out.push(rd.index() as u8);
                out.push(rs.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Mov { rd, rs } | Not { rd, rs } | Neg { rd, rs } => {
                out.push(rd.index() as u8);
                out.push(rs.index() as u8);
            }
            Li { rd, imm } => {
                out.push(rd.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Load { rd, base, off, .. } => {
                out.push(rd.index() as u8);
                out.push(base.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Store { src, base, off, .. } => {
                out.push(src.index() as u8);
                out.push(base.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Push { rs } => out.push(rs.index() as u8),
            Pop { rd } => out.push(rd.index() as u8),
            Branch { rs, rt, rel, .. } => {
                out.push(rs.index() as u8);
                out.push(rt.index() as u8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Jmp { rel } | Call { rel } => out.extend_from_slice(&rel.to_le_bytes()),
            Jr { rs } | Callr { rs } => out.push(rs.index() as u8),
            Ret | Sys | Nop | Halt => {}
            FAlu3 { fd, fs, ft, .. } => {
                out.push(fd.index() as u8);
                out.push(fs.index() as u8);
                out.push(ft.index() as u8);
            }
            FAlu2 { fd, fs, .. } => {
                out.push(fd.index() as u8);
                out.push(fs.index() as u8);
            }
            FLd { fd, base, off } => {
                out.push(fd.index() as u8);
                out.push(base.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
            FSt { fs, base, off } => {
                out.push(fs.index() as u8);
                out.push(base.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
            FLi { fd, bits } => {
                out.push(fd.index() as u8);
                out.extend_from_slice(&bits.to_le_bytes());
            }
            FCvtSiToD { fd, rs } => {
                out.push(fd.index() as u8);
                out.push(rs.index() as u8);
            }
            FCvtDToSi { rd, fs } => {
                out.push(rd.index() as u8);
                out.push(fs.index() as u8);
            }
            FBranch { fs, ft, rel, .. } => {
                out.push(fs.index() as u8);
                out.push(ft.index() as u8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            FBits { rd, fs } => {
                out.push(rd.index() as u8);
                out.push(fs.index() as u8);
            }
            FFromBits { fd, rs } => {
                out.push(fd.index() as u8);
                out.push(rs.index() as u8);
            }
        }
    }

    /// Decodes one instruction from the front of `bytes`.
    ///
    /// Returns the instruction and its encoded length.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated, the opcode byte
    /// is invalid, or a register operand is out of range.
    pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
        use Opcode::*;
        let &op_byte = bytes.first().ok_or(DecodeError::Truncated)?;
        let op = Opcode::from_byte(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
        let reg = |b: &[u8], i: usize| -> Result<Reg, DecodeError> {
            let v = *b.get(i).ok_or(DecodeError::Truncated)?;
            Reg::new(v).ok_or(DecodeError::BadRegister(v))
        };
        let freg = |b: &[u8], i: usize| -> Result<FReg, DecodeError> {
            let v = *b.get(i).ok_or(DecodeError::Truncated)?;
            FReg::new(v).ok_or(DecodeError::BadRegister(v))
        };
        let i32_at = |b: &[u8], i: usize| -> Result<i32, DecodeError> {
            let s = b.get(i..i + 4).ok_or(DecodeError::Truncated)?;
            Ok(i32::from_le_bytes(s.try_into().expect("4-byte slice")))
        };
        let u64_at = |b: &[u8], i: usize| -> Result<u64, DecodeError> {
            let s = b.get(i..i + 8).ok_or(DecodeError::Truncated)?;
            Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        };

        let insn = match op {
            Add | Sub | Mul | Divu | Divs | Remu | Rems | And | Or | Xor | Shl | Shru | Shrs
            | Slt | Sltu => Insn::Alu3 {
                op,
                rd: reg(bytes, 1)?,
                rs: reg(bytes, 2)?,
                rt: reg(bytes, 3)?,
            },
            AddI | MulI | AndI | OrI | XorI | ShlI | ShruI | ShrsI | SltI | SltuI => Insn::AluI {
                op,
                rd: reg(bytes, 1)?,
                rs: reg(bytes, 2)?,
                imm: i32_at(bytes, 3)?,
            },
            Mov => Insn::Mov {
                rd: reg(bytes, 1)?,
                rs: reg(bytes, 2)?,
            },
            Not => Insn::Not {
                rd: reg(bytes, 1)?,
                rs: reg(bytes, 2)?,
            },
            Neg => Insn::Neg {
                rd: reg(bytes, 1)?,
                rs: reg(bytes, 2)?,
            },
            Li => Insn::Li {
                rd: reg(bytes, 1)?,
                imm: u64_at(bytes, 2)?,
            },
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => Insn::Load {
                op,
                rd: reg(bytes, 1)?,
                base: reg(bytes, 2)?,
                off: i32_at(bytes, 3)?,
            },
            Sb | Sh | Sw | Sd => Insn::Store {
                op,
                src: reg(bytes, 1)?,
                base: reg(bytes, 2)?,
                off: i32_at(bytes, 3)?,
            },
            Push => Insn::Push { rs: reg(bytes, 1)? },
            Pop => Insn::Pop { rd: reg(bytes, 1)? },
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Insn::Branch {
                op,
                rs: reg(bytes, 1)?,
                rt: reg(bytes, 2)?,
                rel: i32_at(bytes, 3)?,
            },
            Jmp => Insn::Jmp {
                rel: i32_at(bytes, 1)?,
            },
            Jr => Insn::Jr { rs: reg(bytes, 1)? },
            Call => Insn::Call {
                rel: i32_at(bytes, 1)?,
            },
            Callr => Insn::Callr { rs: reg(bytes, 1)? },
            Ret => Insn::Ret,
            Sys => Insn::Sys,
            Nop => Insn::Nop,
            Halt => Insn::Halt,
            FAdd | FSub | FMul | FDiv => Insn::FAlu3 {
                op,
                fd: freg(bytes, 1)?,
                fs: freg(bytes, 2)?,
                ft: freg(bytes, 3)?,
            },
            FSqrt | FNeg | FMov => Insn::FAlu2 {
                op,
                fd: freg(bytes, 1)?,
                fs: freg(bytes, 2)?,
            },
            FLd => Insn::FLd {
                fd: freg(bytes, 1)?,
                base: reg(bytes, 2)?,
                off: i32_at(bytes, 3)?,
            },
            FSt => Insn::FSt {
                fs: freg(bytes, 1)?,
                base: reg(bytes, 2)?,
                off: i32_at(bytes, 3)?,
            },
            FLi => Insn::FLi {
                fd: freg(bytes, 1)?,
                bits: u64_at(bytes, 2)?,
            },
            FCvtSiToD => Insn::FCvtSiToD {
                fd: freg(bytes, 1)?,
                rs: reg(bytes, 2)?,
            },
            FCvtDToSi => Insn::FCvtDToSi {
                rd: reg(bytes, 1)?,
                fs: freg(bytes, 2)?,
            },
            FBeq | FBlt | FBle => Insn::FBranch {
                op,
                fs: freg(bytes, 1)?,
                ft: freg(bytes, 2)?,
                rel: i32_at(bytes, 3)?,
            },
            FBits => Insn::FBits {
                rd: reg(bytes, 1)?,
                fs: freg(bytes, 2)?,
            },
            FFromBits => Insn::FFromBits {
                fd: freg(bytes, 1)?,
                rs: reg(bytes, 2)?,
            },
        };
        let len = insn.len();
        if bytes.len() < len {
            return Err(DecodeError::Truncated);
        }
        Ok((insn, len))
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Insn::*;
        let opname = |op: Opcode| -> &'static str {
            use Opcode::*;
            match op {
                Add => "add",
                Sub => "sub",
                Mul => "mul",
                Divu => "divu",
                Divs => "divs",
                Remu => "remu",
                Rems => "rems",
                And => "and",
                Or => "or",
                Xor => "xor",
                Shl => "shl",
                Shru => "shru",
                Shrs => "shrs",
                Slt => "slt",
                Sltu => "sltu",
                AddI => "addi",
                MulI => "muli",
                AndI => "andi",
                OrI => "ori",
                XorI => "xori",
                ShlI => "shli",
                ShruI => "shrui",
                ShrsI => "shrsi",
                SltI => "slti",
                SltuI => "sltui",
                Mov => "mov",
                Not => "not",
                Neg => "neg",
                Li => "li",
                Lb => "lb",
                Lbu => "lbu",
                Lh => "lh",
                Lhu => "lhu",
                Lw => "lw",
                Lwu => "lwu",
                Ld => "ld",
                Sb => "sb",
                Sh => "sh",
                Sw => "sw",
                Sd => "sd",
                Push => "push",
                Pop => "pop",
                Beq => "beq",
                Bne => "bne",
                Blt => "blt",
                Bge => "bge",
                Bltu => "bltu",
                Bgeu => "bgeu",
                Jmp => "jmp",
                Jr => "jr",
                Call => "call",
                Callr => "callr",
                Ret => "ret",
                Sys => "sys",
                Nop => "nop",
                Halt => "halt",
                FAdd => "fadd.d",
                FSub => "fsub.d",
                FMul => "fmul.d",
                FDiv => "fdiv.d",
                FSqrt => "fsqrt.d",
                FNeg => "fneg.d",
                FMov => "fmov.d",
                FLd => "fld",
                FSt => "fst",
                FLi => "fli",
                FCvtSiToD => "cvt.si2d",
                FCvtDToSi => "cvt.d2si",
                FBeq => "fbeq",
                FBlt => "fblt",
                FBle => "fble",
                FBits => "fbits",
                FFromBits => "ffrombits",
            }
        };
        match *self {
            Alu3 { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", opname(op)),
            AluI { op, rd, rs, imm } => write!(f, "{} {rd}, {rs}, {imm}", opname(op)),
            Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Not { rd, rs } => write!(f, "not {rd}, {rs}"),
            Neg { rd, rs } => write!(f, "neg {rd}, {rs}"),
            Li { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Load { op, rd, base, off } => write!(f, "{} {rd}, [{base}{off:+}]", opname(op)),
            Store { op, src, base, off } => write!(f, "{} [{base}{off:+}], {src}", opname(op)),
            Push { rs } => write!(f, "push {rs}"),
            Pop { rd } => write!(f, "pop {rd}"),
            Branch { op, rs, rt, rel } => write!(f, "{} {rs}, {rt}, {rel:+}", opname(op)),
            Jmp { rel } => write!(f, "jmp {rel:+}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Call { rel } => write!(f, "call {rel:+}"),
            Callr { rs } => write!(f, "callr {rs}"),
            Ret => write!(f, "ret"),
            Sys => write!(f, "sys"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            FAlu3 { op, fd, fs, ft } => write!(f, "{} {fd}, {fs}, {ft}", opname(op)),
            FAlu2 { op, fd, fs } => write!(f, "{} {fd}, {fs}", opname(op)),
            FLd { fd, base, off } => write!(f, "fld {fd}, [{base}{off:+}]"),
            FSt { fs, base, off } => write!(f, "fst [{base}{off:+}], {fs}"),
            FLi { fd, bits } => write!(f, "fli {fd}, {}", f64::from_bits(bits)),
            FCvtSiToD { fd, rs } => write!(f, "cvt.si2d {fd}, {rs}"),
            FCvtDToSi { rd, fs } => write!(f, "cvt.d2si {rd}, {fs}"),
            FBranch { op, fs, ft, rel } => write!(f, "{} {fs}, {ft}, {rel:+}", opname(op)),
            FBits { rd, fs } => write!(f, "fbits {rd}, {fs}"),
            FFromBits { fd, rs } => write!(f, "ffrombits {fd}, {rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insns() -> Vec<Insn> {
        let r = |i| Reg::new(i).unwrap();
        let fr = |i| FReg::new(i).unwrap();
        vec![
            Insn::Alu3 {
                op: Opcode::Add,
                rd: r(1),
                rs: r(2),
                rt: r(3),
            },
            Insn::AluI {
                op: Opcode::AddI,
                rd: r(4),
                rs: r(4),
                imm: -8,
            },
            Insn::Mov { rd: r(5), rs: r(6) },
            Insn::Li {
                rd: r(7),
                imm: 0xdead_beef_cafe_f00d,
            },
            Insn::Load {
                op: Opcode::Lw,
                rd: r(8),
                base: r(29),
                off: -16,
            },
            Insn::Store {
                op: Opcode::Sd,
                src: r(9),
                base: r(30),
                off: 24,
            },
            Insn::Push { rs: r(10) },
            Insn::Pop { rd: r(11) },
            Insn::Branch {
                op: Opcode::Bltu,
                rs: r(1),
                rt: r(2),
                rel: -100,
            },
            Insn::Jmp { rel: 1234 },
            Insn::Jr { rs: r(12) },
            Insn::Call { rel: -5 },
            Insn::Callr { rs: r(13) },
            Insn::Ret,
            Insn::Sys,
            Insn::Nop,
            Insn::Halt,
            Insn::FAlu3 {
                op: Opcode::FMul,
                fd: fr(0),
                fs: fr(1),
                ft: fr(2),
            },
            Insn::FAlu2 {
                op: Opcode::FSqrt,
                fd: fr(3),
                fs: fr(4),
            },
            Insn::FLd {
                fd: fr(5),
                base: r(29),
                off: 8,
            },
            Insn::FSt {
                fs: fr(6),
                base: r(29),
                off: -8,
            },
            Insn::FLi {
                fd: fr(7),
                bits: 1024.5f64.to_bits(),
            },
            Insn::FCvtSiToD {
                fd: fr(8),
                rs: r(14),
            },
            Insn::FCvtDToSi {
                rd: r(15),
                fs: fr(9),
            },
            Insn::FBranch {
                op: Opcode::FBle,
                fs: fr(10),
                ft: fr(11),
                rel: 42,
            },
            Insn::FBits {
                rd: r(16),
                fs: fr(12),
            },
            Insn::FFromBits {
                fd: fr(13),
                rs: r(17),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_shape() {
        for insn in sample_insns() {
            let mut buf = Vec::new();
            insn.encode(&mut buf);
            assert_eq!(buf.len(), insn.len(), "declared length for {insn}");
            let (decoded, len) = Insn::decode(&buf).unwrap();
            assert_eq!(decoded, insn);
            assert_eq!(len, buf.len());
        }
    }

    #[test]
    fn stream_of_instructions_decodes_in_sequence() {
        let insns = sample_insns();
        let mut buf = Vec::new();
        for i in &insns {
            i.encode(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (insn, len) = Insn::decode(&buf[pos..]).unwrap();
            decoded.push(insn);
            pos += len;
        }
        assert_eq!(decoded, insns);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let insn = Insn::Li {
            rd: Reg::A0,
            imm: u64::MAX,
        };
        let mut buf = Vec::new();
        insn.encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                Insn::decode(&buf[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert_eq!(
            Insn::decode(&[0xFF]).unwrap_err(),
            DecodeError::BadOpcode(0xFF)
        );
        assert_eq!(
            Insn::decode(&[0x00]).unwrap_err(),
            DecodeError::BadOpcode(0x00)
        );
    }

    #[test]
    fn bad_register_is_rejected() {
        // add rd=200 — register out of range.
        assert_eq!(
            Insn::decode(&[Opcode::Add as u8, 200, 0, 0]).unwrap_err(),
            DecodeError::BadRegister(200)
        );
    }

    #[test]
    fn classes_are_as_documented() {
        assert_eq!(Insn::Push { rs: Reg::A0 }.class(), InsnClass::Stack);
        assert_eq!(Insn::Jr { rs: Reg::A0 }.class(), InsnClass::IndirectJump);
        assert_eq!(
            Insn::FCvtSiToD {
                fd: FReg::new(0).unwrap(),
                rs: Reg::A0
            }
            .class(),
            InsnClass::FpConvert
        );
        assert_eq!(Insn::Sys.class(), InsnClass::Sys);
    }

    #[test]
    fn terminators_are_flagged() {
        assert!(Insn::Jmp { rel: 0 }.is_terminator());
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Halt.is_terminator());
        assert!(!Insn::Nop.is_terminator());
        assert!(!Insn::Sys.is_terminator());
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for insn in sample_insns() {
            assert!(!insn.to_string().is_empty());
        }
    }
}
