//! Two-pass text assembler for BVM assembly.
//!
//! ## Syntax
//!
//! ```text
//! # comment
//! .text                    # switch to the code section (default)
//! .data                    # switch to the data section
//! .global name             # export a symbol
//! .extern name             # declare an external symbol
//! .asciz "hello\n"         # NUL-terminated string
//! .byte 1, 2, 0x1f         # raw bytes
//! .half 1234               # 16-bit values
//! .word 0xdeadbeef         # 32-bit values
//! .quad label, 42          # 64-bit values (labels allowed)
//! .double 3.14             # IEEE-754 double
//! .space 64                # zero-filled bytes
//! .align 8                 # pad with zeros to an 8-byte boundary
//!
//! main:                    # label
//!     li   a0, 42          # load immediate (also accepts `li a0, label`)
//!     addi sp, sp, -16
//!     ld   t0, [sp+8]      # memory operands: [reg], [reg+imm], [reg-imm]
//!     beq  a0, t0, main    # branch to label
//!     fli  f0, 1024.5      # float immediate
//!     sys
//! ```
//!
//! All label references (branches, `jmp`/`call`, `li`, `.quad`) become
//! relocations in the produced [`Object`]; the linker resolves them.

use crate::insn::{Insn, Opcode};
use crate::obj::{Object, Reloc, RelocKind, Section, Symbol};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles BVM source text into a relocatable object.
///
/// # Errors
///
/// Returns [`AsmError`] (with the offending line number) on syntax errors,
/// unknown mnemonics or registers, malformed operands, duplicate labels, or
/// out-of-range immediates.
pub fn assemble(src: &str) -> Result<Object, AsmError> {
    Assembler::new().run(src)
}

/// A symbol operand with an optional constant addend (`label+8`).
#[derive(Debug, Clone, PartialEq)]
struct SymRef {
    name: String,
    addend: i64,
}

/// An immediate that is either a constant or a symbol reference.
#[derive(Debug, Clone, PartialEq)]
enum ImmOrSym {
    Imm(i64),
    Sym(SymRef),
}

/// A parsed source statement, sized but not yet emitted.
#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    /// A machine instruction; label operands are still symbolic.
    Insn {
        insn: PInsn,
        line: usize,
    },
    Bytes(Vec<u8>),
    /// `.quad` entries, possibly symbolic.
    Quads(Vec<ImmOrSym>),
    Space(usize),
    Align(usize),
}

/// Parsed instruction: like [`Insn`] but with symbolic targets.
#[derive(Debug, Clone, PartialEq)]
enum PInsn {
    Concrete(Insn),
    /// `li rd, symbol(+addend)` — becomes `Li` with an `Abs64` reloc.
    LiSym {
        rd: Reg,
        sym: SymRef,
    },
    /// Branch to a label.
    BranchSym {
        op: Opcode,
        rs: Reg,
        rt: Reg,
        sym: SymRef,
    },
    FBranchSym {
        op: Opcode,
        fs: FReg,
        ft: FReg,
        sym: SymRef,
    },
    JmpSym {
        sym: SymRef,
    },
    CallSym {
        sym: SymRef,
    },
}

impl PInsn {
    fn len(&self) -> usize {
        match self {
            PInsn::Concrete(i) => i.len(),
            PInsn::LiSym { .. } => 10,
            PInsn::BranchSym { .. } | PInsn::FBranchSym { .. } => 7,
            PInsn::JmpSym { .. } | PInsn::CallSym { .. } => 5,
        }
    }
}

struct Assembler {
    obj: Object,
    section: Section,
    /// Statements per section, with source lines.
    text_stmts: Vec<Stmt>,
    data_stmts: Vec<Stmt>,
    labels: HashMap<String, (Section, u64)>,
    globals: Vec<String>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            obj: Object::new(),
            section: Section::Text,
            text_stmts: Vec::new(),
            data_stmts: Vec::new(),
            labels: HashMap::new(),
            globals: Vec::new(),
        }
    }

    fn run(mut self, src: &str) -> Result<Object, AsmError> {
        // Pass 1: parse, size, and record label offsets.
        let mut text_off = 0u64;
        let mut data_off = 0u64;
        for (idx, raw_line) in src.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            let mut rest = line;
            // Labels (possibly several on one line).
            while let Some(colon) = find_label_colon(rest) {
                let (label, tail) = rest.split_at(colon);
                let label = label.trim();
                if !is_ident(label) {
                    return Err(err(line_no, format!("invalid label name `{label}`")));
                }
                let off = match self.section {
                    Section::Text => text_off,
                    Section::Data => data_off,
                };
                if self
                    .labels
                    .insert(label.to_string(), (self.section, off))
                    .is_some()
                {
                    return Err(err(line_no, format!("duplicate label `{label}`")));
                }
                rest = tail[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                self.directive(directive, line_no, &mut text_off, &mut data_off)?;
            } else {
                let insn = parse_insn(rest, line_no)?;
                let size = insn.len() as u64;
                match self.section {
                    Section::Text => {
                        self.text_stmts.push(Stmt::Insn {
                            insn,
                            line: line_no,
                        });
                        text_off += size;
                    }
                    Section::Data => {
                        return Err(err(line_no, "instructions are not allowed in .data"));
                    }
                }
            }
        }

        // Register labels as symbols.
        for (name, (section, offset)) in &self.labels {
            self.obj.symbols.push(Symbol {
                name: name.clone(),
                section: *section,
                offset: *offset,
                global: self.globals.contains(name),
            });
        }
        for g in &self.globals {
            if !self.labels.contains_key(g) && !self.obj.externs.contains(g) {
                return Err(err(0, format!("`.global {g}` but `{g}` is never defined")));
            }
        }
        self.obj.symbols.sort_by(|a, b| a.name.cmp(&b.name));

        // Pass 2: emit.
        let text_stmts = std::mem::take(&mut self.text_stmts);
        let data_stmts = std::mem::take(&mut self.data_stmts);
        for stmt in text_stmts {
            self.emit(Section::Text, stmt)?;
        }
        for stmt in data_stmts {
            self.emit(Section::Data, stmt)?;
        }
        Ok(self.obj)
    }

    fn directive(
        &mut self,
        directive: &str,
        line: usize,
        text_off: &mut u64,
        data_off: &mut u64,
    ) -> Result<(), AsmError> {
        let (name, args) = match directive.find(char::is_whitespace) {
            Some(i) => (&directive[..i], directive[i..].trim()),
            None => (directive, ""),
        };
        let off = match self.section {
            Section::Text => text_off,
            Section::Data => data_off,
        };
        let push = |this: &mut Assembler, stmt: Stmt| match this.section {
            Section::Text => this.text_stmts.push(stmt),
            Section::Data => this.data_stmts.push(stmt),
        };
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "global" | "globl" => {
                for part in split_args(args) {
                    if !is_ident(&part) {
                        return Err(err(line, format!("bad symbol `{part}`")));
                    }
                    self.globals.push(part);
                }
            }
            "extern" => {
                for part in split_args(args) {
                    if !is_ident(&part) {
                        return Err(err(line, format!("bad symbol `{part}`")));
                    }
                    self.obj.externs.push(part);
                }
            }
            "asciz" | "string" => {
                let mut bytes = parse_string(args, line)?;
                bytes.push(0);
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "ascii" => {
                let bytes = parse_string(args, line)?;
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "byte" => {
                let vals = parse_imm_list(args, line)?;
                let bytes: Vec<u8> = vals.iter().map(|v| *v as u8).collect();
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "half" => {
                let vals = parse_imm_list(args, line)?;
                let mut bytes = Vec::new();
                for v in vals {
                    bytes.extend_from_slice(&(v as u16).to_le_bytes());
                }
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "word" => {
                let vals = parse_imm_list(args, line)?;
                let mut bytes = Vec::new();
                for v in vals {
                    bytes.extend_from_slice(&(v as u32).to_le_bytes());
                }
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "quad" => {
                let mut quads = Vec::new();
                for part in split_args(args) {
                    quads.push(parse_imm_or_sym(&part, line)?);
                }
                *off += 8 * quads.len() as u64;
                push(self, Stmt::Quads(quads));
            }
            "double" => {
                let mut bytes = Vec::new();
                for part in split_args(args) {
                    let v: f64 = part
                        .parse()
                        .map_err(|_| err(line, format!("bad double `{part}`")))?;
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                *off += bytes.len() as u64;
                push(self, Stmt::Bytes(bytes));
            }
            "space" | "zero" => {
                let n = parse_imm(args, line)? as usize;
                *off += n as u64;
                push(self, Stmt::Space(n));
            }
            "align" => {
                let n = parse_imm(args, line)? as usize;
                if n == 0 || !n.is_power_of_two() {
                    return Err(err(line, "alignment must be a power of two"));
                }
                let pad = (n as u64 - (*off % n as u64)) % n as u64;
                *off += pad;
                push(self, Stmt::Align(n));
            }
            other => return Err(err(line, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn emit(&mut self, section: Section, stmt: Stmt) -> Result<(), AsmError> {
        let buf = match section {
            Section::Text => &mut self.obj.text,
            Section::Data => &mut self.obj.data,
        };
        match stmt {
            Stmt::Bytes(b) => buf.extend_from_slice(&b),
            Stmt::Space(n) => buf.extend(std::iter::repeat_n(0u8, n)),
            Stmt::Align(n) => {
                let pad = (n - (buf.len() % n)) % n;
                buf.extend(std::iter::repeat_n(0u8, pad));
            }
            Stmt::Quads(quads) => {
                for q in quads {
                    match q {
                        ImmOrSym::Imm(v) => buf.extend_from_slice(&(v as u64).to_le_bytes()),
                        ImmOrSym::Sym(s) => {
                            let offset = buf.len() as u64;
                            buf.extend_from_slice(&0u64.to_le_bytes());
                            self.obj.relocs.push(Reloc {
                                section,
                                offset,
                                kind: RelocKind::Abs64,
                                symbol: s.name,
                                addend: s.addend,
                            });
                        }
                    }
                }
            }
            Stmt::Insn { insn, line } => {
                let start = buf.len() as u64;
                match insn {
                    PInsn::Concrete(i) => i.encode(buf),
                    PInsn::LiSym { rd, sym } => {
                        Insn::Li { rd, imm: 0 }.encode(buf);
                        self.obj.relocs.push(Reloc {
                            section,
                            offset: start + 2,
                            kind: RelocKind::Abs64,
                            symbol: sym.name,
                            addend: sym.addend,
                        });
                    }
                    PInsn::BranchSym { op, rs, rt, sym } => {
                        Insn::Branch { op, rs, rt, rel: 0 }.encode(buf);
                        self.obj.relocs.push(Reloc {
                            section,
                            offset: start + 3,
                            kind: RelocKind::Rel32 { base: start },
                            symbol: sym.name,
                            addend: sym.addend,
                        });
                    }
                    PInsn::FBranchSym { op, fs, ft, sym } => {
                        Insn::FBranch { op, fs, ft, rel: 0 }.encode(buf);
                        self.obj.relocs.push(Reloc {
                            section,
                            offset: start + 3,
                            kind: RelocKind::Rel32 { base: start },
                            symbol: sym.name,
                            addend: sym.addend,
                        });
                    }
                    PInsn::JmpSym { sym } => {
                        Insn::Jmp { rel: 0 }.encode(buf);
                        self.obj.relocs.push(Reloc {
                            section,
                            offset: start + 1,
                            kind: RelocKind::Rel32 { base: start },
                            symbol: sym.name,
                            addend: sym.addend,
                        });
                    }
                    PInsn::CallSym { sym } => {
                        Insn::Call { rel: 0 }.encode(buf);
                        self.obj.relocs.push(Reloc {
                            section,
                            offset: start + 1,
                            kind: RelocKind::Rel32 { base: start },
                            symbol: sym.name,
                            addend: sym.addend,
                        });
                    }
                }
                let _ = line;
            }
        }
        Ok(())
    }
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// Strips a `#` comment, respecting string literals and char literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => escaped = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            '#' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the colon ending a leading label, if any (not inside operands).
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if is_ident(head.trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits a comma-separated argument list, respecting strings and brackets.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    let mut cur = String::new();
    for c in s.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => {
                cur.push(c);
                escaped = true;
            }
            '"' if !in_char => {
                in_str = !in_str;
                cur.push(c);
            }
            '\'' if !in_str => {
                in_char = !in_char;
                cur.push(c);
            }
            '[' if !in_str && !in_char => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str && !in_char => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 && !in_str && !in_char => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

fn parse_string(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected a quoted string"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('r') => out.push(b'\r'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                Some(other) => return Err(err(line, format!("bad escape `\\{other}`"))),
                None => return Err(err(line, "trailing backslash in string")),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_imm(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('\'') {
        // Character literal.
        let inner = rest
            .strip_suffix('\'')
            .ok_or_else(|| err(line, "unterminated char literal"))?;
        let b = match inner {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\r" => b'\r',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            _ if inner.len() == 1 => inner.as_bytes()[0],
            _ => return Err(err(line, format!("bad char literal '{inner}'"))),
        };
        return Ok(b as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, s),
    };
    let val = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{s}`")))?
    } else if let Some(bin) = body.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).map_err(|_| err(line, format!("bad immediate `{s}`")))?
    } else {
        body.parse::<u64>()
            .map_err(|_| err(line, format!("bad immediate `{s}`")))?
    };
    Ok(if neg {
        (val as i64).wrapping_neg()
    } else {
        val as i64
    })
}

fn parse_imm_list(s: &str, line: usize) -> Result<Vec<i64>, AsmError> {
    split_args(s).iter().map(|p| parse_imm(p, line)).collect()
}

/// Parses `imm`, `symbol`, `symbol+imm`, or `symbol-imm`.
fn parse_imm_or_sym(s: &str, line: usize) -> Result<ImmOrSym, AsmError> {
    let s = s.trim();
    if s.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
        // Symbol with optional addend.
        if let Some(plus) = s.find('+') {
            let (name, add) = s.split_at(plus);
            return Ok(ImmOrSym::Sym(SymRef {
                name: ident_checked(name.trim(), line)?,
                addend: parse_imm(&add[1..], line)?,
            }));
        }
        if let Some(minus) = s.find('-') {
            let (name, sub) = s.split_at(minus);
            return Ok(ImmOrSym::Sym(SymRef {
                name: ident_checked(name.trim(), line)?,
                addend: -parse_imm(&sub[1..], line)?,
            }));
        }
        return Ok(ImmOrSym::Sym(SymRef {
            name: ident_checked(s, line)?,
            addend: 0,
        }));
    }
    Ok(ImmOrSym::Imm(parse_imm(s, line)?))
}

fn ident_checked(s: &str, line: usize) -> Result<String, AsmError> {
    if is_ident(s) {
        Ok(s.to_string())
    } else {
        Err(err(line, format!("bad symbol name `{s}`")))
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s.trim()).ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

fn parse_freg(s: &str, line: usize) -> Result<FReg, AsmError> {
    FReg::parse(s.trim()).ok_or_else(|| err(line, format!("unknown fp register `{s}`")))
}

/// Parses a memory operand `[reg]`, `[reg+imm]` or `[reg-imm]`.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected memory operand `[reg+off]`, got `{s}`"),
            )
        })?;
    let inner = inner.trim();
    if let Some(plus) = inner.find('+') {
        let (r, o) = inner.split_at(plus);
        let off = parse_imm(&o[1..], line)?;
        return Ok((parse_reg(r, line)?, i32_checked(off, line)?));
    }
    if let Some(minus) = inner.find('-') {
        let (r, o) = inner.split_at(minus);
        let off = -parse_imm(&o[1..], line)?;
        return Ok((parse_reg(r, line)?, i32_checked(off, line)?));
    }
    Ok((parse_reg(inner, line)?, 0))
}

fn i32_checked(v: i64, line: usize) -> Result<i32, AsmError> {
    i32::try_from(v).map_err(|_| err(line, format!("immediate {v} does not fit in 32 bits")))
}

/// Parses a branch/jump target: a label or a raw relative offset.
fn parse_target(s: &str, line: usize) -> Result<ImmOrSym, AsmError> {
    parse_imm_or_sym(s, line)
}

fn parse_insn(s: &str, line: usize) -> Result<PInsn, AsmError> {
    let (mnemonic, rest) = match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let args = split_args(rest);
    let argn = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            ))
        }
    };

    use Opcode::*;
    let alu3 = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(3)?;
        Ok(PInsn::Concrete(Insn::Alu3 {
            op,
            rd: parse_reg(&args[0], line)?,
            rs: parse_reg(&args[1], line)?,
            rt: parse_reg(&args[2], line)?,
        }))
    };
    let alui = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(3)?;
        Ok(PInsn::Concrete(Insn::AluI {
            op,
            rd: parse_reg(&args[0], line)?,
            rs: parse_reg(&args[1], line)?,
            imm: i32_checked(parse_imm(&args[2], line)?, line)?,
        }))
    };
    let load = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(2)?;
        let (base, off) = parse_mem(&args[1], line)?;
        Ok(PInsn::Concrete(Insn::Load {
            op,
            rd: parse_reg(&args[0], line)?,
            base,
            off,
        }))
    };
    let store = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(2)?;
        let (base, off) = parse_mem(&args[0], line)?;
        Ok(PInsn::Concrete(Insn::Store {
            op,
            src: parse_reg(&args[1], line)?,
            base,
            off,
        }))
    };
    let branch = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(3)?;
        let rs = parse_reg(&args[0], line)?;
        let rt = parse_reg(&args[1], line)?;
        match parse_target(&args[2], line)? {
            ImmOrSym::Imm(rel) => Ok(PInsn::Concrete(Insn::Branch {
                op,
                rs,
                rt,
                rel: i32_checked(rel, line)?,
            })),
            ImmOrSym::Sym(sym) => Ok(PInsn::BranchSym { op, rs, rt, sym }),
        }
    };
    let fbranch = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(3)?;
        let fs = parse_freg(&args[0], line)?;
        let ft = parse_freg(&args[1], line)?;
        match parse_target(&args[2], line)? {
            ImmOrSym::Imm(rel) => Ok(PInsn::Concrete(Insn::FBranch {
                op,
                fs,
                ft,
                rel: i32_checked(rel, line)?,
            })),
            ImmOrSym::Sym(sym) => Ok(PInsn::FBranchSym { op, fs, ft, sym }),
        }
    };
    let falu3 = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(3)?;
        Ok(PInsn::Concrete(Insn::FAlu3 {
            op,
            fd: parse_freg(&args[0], line)?,
            fs: parse_freg(&args[1], line)?,
            ft: parse_freg(&args[2], line)?,
        }))
    };
    let falu2 = |op: Opcode| -> Result<PInsn, AsmError> {
        argn(2)?;
        Ok(PInsn::Concrete(Insn::FAlu2 {
            op,
            fd: parse_freg(&args[0], line)?,
            fs: parse_freg(&args[1], line)?,
        }))
    };

    match mnemonic {
        "add" => alu3(Add),
        "sub" => alu3(Sub),
        "mul" => alu3(Mul),
        "divu" => alu3(Divu),
        "divs" | "div" => alu3(Divs),
        "remu" => alu3(Remu),
        "rems" | "rem" => alu3(Rems),
        "and" => alu3(And),
        "or" => alu3(Or),
        "xor" => alu3(Xor),
        "shl" => alu3(Shl),
        "shru" => alu3(Shru),
        "shrs" | "sar" => alu3(Shrs),
        "slt" => alu3(Slt),
        "sltu" => alu3(Sltu),
        "addi" => alui(AddI),
        "subi" => {
            // Pseudo: subi rd, rs, imm == addi rd, rs, -imm.
            argn(3)?;
            let imm = parse_imm(&args[2], line)?;
            Ok(PInsn::Concrete(Insn::AluI {
                op: AddI,
                rd: parse_reg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
                imm: i32_checked(-imm, line)?,
            }))
        }
        "muli" => alui(MulI),
        "andi" => alui(AndI),
        "ori" => alui(OrI),
        "xori" => alui(XorI),
        "shli" => alui(ShlI),
        "shrui" => alui(ShruI),
        "shrsi" | "sari" => alui(ShrsI),
        "slti" => alui(SltI),
        "sltui" => alui(SltuI),
        "mov" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::Mov {
                rd: parse_reg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
            }))
        }
        "not" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::Not {
                rd: parse_reg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
            }))
        }
        "neg" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::Neg {
                rd: parse_reg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
            }))
        }
        "li" | "la" => {
            argn(2)?;
            let rd = parse_reg(&args[0], line)?;
            match parse_imm_or_sym(&args[1], line)? {
                ImmOrSym::Imm(v) => Ok(PInsn::Concrete(Insn::Li { rd, imm: v as u64 })),
                ImmOrSym::Sym(sym) => Ok(PInsn::LiSym { rd, sym }),
            }
        }
        "lb" => load(Lb),
        "lbu" => load(Lbu),
        "lh" => load(Lh),
        "lhu" => load(Lhu),
        "lw" => load(Lw),
        "lwu" => load(Lwu),
        "ld" => load(Ld),
        "sb" => store(Sb),
        "sh" => store(Sh),
        "sw" => store(Sw),
        "sd" => store(Sd),
        "push" => {
            argn(1)?;
            Ok(PInsn::Concrete(Insn::Push {
                rs: parse_reg(&args[0], line)?,
            }))
        }
        "pop" => {
            argn(1)?;
            Ok(PInsn::Concrete(Insn::Pop {
                rd: parse_reg(&args[0], line)?,
            }))
        }
        "beq" => branch(Beq),
        "bne" => branch(Bne),
        "blt" => branch(Blt),
        "bge" => branch(Bge),
        "bltu" => branch(Bltu),
        "bgeu" => branch(Bgeu),
        "jmp" | "j" => {
            argn(1)?;
            match parse_target(&args[0], line)? {
                ImmOrSym::Imm(rel) => Ok(PInsn::Concrete(Insn::Jmp {
                    rel: i32_checked(rel, line)?,
                })),
                ImmOrSym::Sym(sym) => Ok(PInsn::JmpSym { sym }),
            }
        }
        "jr" => {
            argn(1)?;
            Ok(PInsn::Concrete(Insn::Jr {
                rs: parse_reg(&args[0], line)?,
            }))
        }
        "call" => {
            argn(1)?;
            match parse_target(&args[0], line)? {
                ImmOrSym::Imm(rel) => Ok(PInsn::Concrete(Insn::Call {
                    rel: i32_checked(rel, line)?,
                })),
                ImmOrSym::Sym(sym) => Ok(PInsn::CallSym { sym }),
            }
        }
        "callr" => {
            argn(1)?;
            Ok(PInsn::Concrete(Insn::Callr {
                rs: parse_reg(&args[0], line)?,
            }))
        }
        "ret" => {
            argn(0)?;
            Ok(PInsn::Concrete(Insn::Ret))
        }
        "sys" => {
            argn(0)?;
            Ok(PInsn::Concrete(Insn::Sys))
        }
        "nop" => {
            argn(0)?;
            Ok(PInsn::Concrete(Insn::Nop))
        }
        "halt" => {
            argn(0)?;
            Ok(PInsn::Concrete(Insn::Halt))
        }
        "fadd.d" | "fadd" => falu3(FAdd),
        "fsub.d" | "fsub" => falu3(FSub),
        "fmul.d" | "fmul" => falu3(FMul),
        "fdiv.d" | "fdiv" => falu3(FDiv),
        "fsqrt.d" | "fsqrt" => falu2(FSqrt),
        "fneg.d" | "fneg" => falu2(FNeg),
        "fmov.d" | "fmov" => falu2(FMov),
        "fld" => {
            argn(2)?;
            let (base, off) = parse_mem(&args[1], line)?;
            Ok(PInsn::Concrete(Insn::FLd {
                fd: parse_freg(&args[0], line)?,
                base,
                off,
            }))
        }
        "fst" => {
            argn(2)?;
            let (base, off) = parse_mem(&args[0], line)?;
            Ok(PInsn::Concrete(Insn::FSt {
                fs: parse_freg(&args[1], line)?,
                base,
                off,
            }))
        }
        "fli" => {
            argn(2)?;
            let fd = parse_freg(&args[0], line)?;
            let lit = args[1].trim();
            let v: f64 = lit
                .parse()
                .map_err(|_| err(line, format!("bad float literal `{lit}`")))?;
            Ok(PInsn::Concrete(Insn::FLi {
                fd,
                bits: v.to_bits(),
            }))
        }
        "cvt.si2d" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::FCvtSiToD {
                fd: parse_freg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
            }))
        }
        "cvt.d2si" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::FCvtDToSi {
                rd: parse_reg(&args[0], line)?,
                fs: parse_freg(&args[1], line)?,
            }))
        }
        "fbeq" => fbranch(FBeq),
        "fblt" => fbranch(FBlt),
        "fble" => fbranch(FBle),
        "fbits" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::FBits {
                rd: parse_reg(&args[0], line)?,
                fs: parse_freg(&args[1], line)?,
            }))
        }
        "ffrombits" => {
            argn(2)?;
            Ok(PInsn::Concrete(Insn::FFromBits {
                fd: parse_freg(&args[0], line)?,
                rs: parse_reg(&args[1], line)?,
            }))
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::RelocKind;

    #[test]
    fn assembles_a_minimal_program() {
        let obj = assemble(
            r#"
            .text
            .global _start
        _start:
            li a0, 42
            li sv, 0
            sys
            "#,
        )
        .unwrap();
        assert_eq!(obj.text.len(), 10 + 10 + 1);
        let start = obj.symbol("_start").unwrap();
        assert_eq!(start.offset, 0);
        assert!(start.global);
    }

    #[test]
    fn labels_and_branches_create_rel32_relocs() {
        let obj = assemble(
            r#"
        loop:
            addi a0, a0, -1
            bne a0, r0, loop
            ret
            "#,
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 1);
        let r = &obj.relocs[0];
        assert_eq!(r.symbol, "loop");
        assert_eq!(r.kind, RelocKind::Rel32 { base: 7 });
        assert_eq!(r.offset, 7 + 3);
    }

    #[test]
    fn li_label_creates_abs64_reloc() {
        let obj = assemble(
            r#"
            .data
        msg: .asciz "hi"
            .text
            li a0, msg
            "#,
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 1);
        assert_eq!(obj.relocs[0].kind, RelocKind::Abs64);
        assert_eq!(obj.relocs[0].offset, 2);
        let msg = obj.symbol("msg").unwrap();
        assert_eq!(msg.section, Section::Data);
        assert_eq!(obj.data, b"hi\0");
    }

    #[test]
    fn data_directives_emit_expected_bytes() {
        let obj = assemble(
            r#"
            .data
            .byte 1, 2, 0xff
            .half 0x1234
            .word 0xdeadbeef
            .quad 7
            .double 1.5
            .align 8
            .space 3
            "#,
        )
        .unwrap();
        let mut expect = vec![1u8, 2, 0xff];
        expect.extend_from_slice(&0x1234u16.to_le_bytes());
        expect.extend_from_slice(&0xdeadbeefu32.to_le_bytes());
        expect.extend_from_slice(&7u64.to_le_bytes());
        expect.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        expect.push(0); // align 8: 17 bytes -> pad... (3+2+4 = 9; +8 = 17; +8 = 25 -> pad 7)
                        // Recompute: 3 + 2 + 4 + 8 + 8 = 25, pad to 32 = 7 zeros, then 3 zeros.
        expect.truncate(25);
        expect.extend(std::iter::repeat_n(0, 7));
        expect.extend(std::iter::repeat_n(0, 3));
        assert_eq!(obj.data, expect);
    }

    #[test]
    fn quad_with_label_relocates() {
        let obj = assemble(
            r#"
            .data
        table: .quad target, target+9
            .text
        target: nop
            "#,
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 2);
        assert_eq!(obj.relocs[0].addend, 0);
        assert_eq!(obj.relocs[1].addend, 9);
        assert_eq!(obj.relocs[1].offset, 8);
    }

    #[test]
    fn char_literals_and_negative_immediates() {
        let obj = assemble("li a0, 'A'\naddi sp, sp, -32").unwrap();
        let (insn, len) = Insn::decode(&obj.text).unwrap();
        assert_eq!(
            insn,
            Insn::Li {
                rd: Reg::A0,
                imm: b'A' as u64
            }
        );
        let (insn2, _) = Insn::decode(&obj.text[len..]).unwrap();
        assert_eq!(
            insn2,
            Insn::AluI {
                op: Opcode::AddI,
                rd: Reg::SP,
                rs: Reg::SP,
                imm: -32
            }
        );
    }

    #[test]
    fn memory_operands_parse_offsets() {
        let obj = assemble("ld t0, [sp+16]\nsd [fp-8], t1\nlw t2, [a0]").unwrap();
        let mut pos = 0;
        let (i1, l1) = Insn::decode(&obj.text).unwrap();
        pos += l1;
        assert_eq!(
            i1,
            Insn::Load {
                op: Opcode::Ld,
                rd: Reg::parse("t0").unwrap(),
                base: Reg::SP,
                off: 16
            }
        );
        let (i2, l2) = Insn::decode(&obj.text[pos..]).unwrap();
        pos += l2;
        assert_eq!(
            i2,
            Insn::Store {
                op: Opcode::Sd,
                src: Reg::parse("t1").unwrap(),
                base: Reg::FP,
                off: -8
            }
        );
        let (i3, _) = Insn::decode(&obj.text[pos..]).unwrap();
        assert_eq!(
            i3,
            Insn::Load {
                op: Opcode::Lw,
                rd: Reg::parse("t2").unwrap(),
                base: Reg::A0,
                off: 0
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus_insn a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus_insn"));

        let e = assemble("add a0, a1\n").unwrap_err();
        assert!(e.msg.contains("expects 3 operands"));

        let e = assemble("li a9, 1\n").unwrap_err();
        assert!(e.msg.contains("unknown register"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let e = assemble("x:\nnop\nx:\nnop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn global_undefined_symbol_is_rejected() {
        let e = assemble(".global nothing\nnop").unwrap_err();
        assert!(e.msg.contains("never defined"));
    }

    #[test]
    fn instructions_in_data_are_rejected() {
        let e = assemble(".data\nnop").unwrap_err();
        assert!(e.msg.contains("not allowed"));
    }

    #[test]
    fn comments_inside_strings_are_preserved() {
        let obj = assemble(".data\n.asciz \"a # b\" # real comment").unwrap();
        assert_eq!(obj.data, b"a # b\0");
    }

    #[test]
    fn fp_instructions_assemble() {
        let obj = assemble(
            r#"
            fli f0, 1024.0
            cvt.si2d f1, a0
            fadd.d f2, f0, f1
            fbeq f2, f0, 14
            "#,
        )
        .unwrap();
        let (i, _) = Insn::decode(&obj.text).unwrap();
        assert_eq!(
            i,
            Insn::FLi {
                fd: FReg::new(0).unwrap(),
                bits: 1024.0f64.to_bits()
            }
        );
    }

    #[test]
    fn extern_symbols_are_recorded() {
        let obj = assemble(".extern printf, sin\ncall printf").unwrap();
        assert_eq!(obj.externs, vec!["printf".to_string(), "sin".to_string()]);
        assert_eq!(obj.relocs.len(), 1);
        assert_eq!(obj.relocs[0].symbol, "printf");
    }
}
