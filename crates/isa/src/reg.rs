//! General-purpose and floating-point register names.

use std::fmt;

/// One of the 32 general-purpose 64-bit registers, `r0..r31`.
///
/// The BVM ABI assigns conventional roles:
///
/// | Register | Alias | Role |
/// |---|---|---|
/// | `r0` | `zero` | hardwired zero (writes are ignored by the CPU) |
/// | `r1..r6` | `a0..a5` | arguments / `a0` return value |
/// | `r7` | `sv` | syscall number |
/// | `r8..r15` | `t0..t7` | caller-saved temporaries |
/// | `r16..r23` | `s0..s7` | callee-saved |
/// | `r26` | `tc` | trap cause (written by the CPU on a trap) |
/// | `r27` | `tr` | trap resume address |
/// | `r29` | `sp` | stack pointer |
/// | `r30` | `fp` | frame pointer |
/// | `r31` | `ra` | return address |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 32;

    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// First argument / return value.
    pub const A0: Reg = Reg(1);
    /// Second argument.
    pub const A1: Reg = Reg(2);
    /// Third argument.
    pub const A2: Reg = Reg(3);
    /// Fourth argument.
    pub const A3: Reg = Reg(4);
    /// Fifth argument.
    pub const A4: Reg = Reg(5);
    /// Sixth argument.
    pub const A5: Reg = Reg(6);
    /// Syscall number.
    pub const SV: Reg = Reg(7);
    /// Trap cause.
    pub const TC: Reg = Reg(26);
    /// Trap resume address.
    pub const TR: Reg = Reg(27);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    pub const fn new(index: u8) -> Option<Reg> {
        if (index as usize) < Reg::COUNT {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register index, in `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a register name: `rN`, or an ABI alias (`a0..a5`, `sv`,
    /// `t0..t7`, `s0..s7`, `tc`, `tr`, `sp`, `fp`, `ra`).
    pub fn parse(name: &str) -> Option<Reg> {
        let alias = |i: u8| Some(Reg(i));
        match name {
            "zero" => return alias(0),
            "sv" => return alias(7),
            "tc" => return alias(26),
            "tr" => return alias(27),
            "sp" => return alias(29),
            "fp" => return alias(30),
            "ra" => return alias(31),
            _ => {}
        }
        if !name.is_char_boundary(1) || name.len() < 2 {
            return None;
        }
        let (prefix, num) = name.split_at(1);
        let n: u8 = num.parse().ok()?;
        match prefix {
            "r" if (n as usize) < Reg::COUNT => Some(Reg(n)),
            "a" if n <= 5 => Some(Reg(1 + n)),
            "t" if n <= 7 => Some(Reg(8 + n)),
            "s" if n <= 7 => Some(Reg(16 + n)),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            1..=6 => write!(f, "a{}", self.0 - 1),
            7 => write!(f, "sv"),
            8..=15 => write!(f, "t{}", self.0 - 8),
            16..=23 => write!(f, "s{}", self.0 - 16),
            26 => write!(f, "tc"),
            27 => write!(f, "tr"),
            29 => write!(f, "sp"),
            30 => write!(f, "fp"),
            31 => write!(f, "ra"),
            n => write!(f, "r{n}"),
        }
    }
}

/// One of the 16 double-precision floating-point registers, `f0..f15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Number of floating-point registers.
    pub const COUNT: usize = 16;

    /// Creates a floating-point register from its index.
    ///
    /// Returns `None` if `index >= 16`.
    pub const fn new(index: u8) -> Option<FReg> {
        if (index as usize) < FReg::COUNT {
            Some(FReg(index))
        } else {
            None
        }
    }

    /// The register index, in `0..16`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a floating-point register name `fN`.
    pub fn parse(name: &str) -> Option<FReg> {
        let num = name.strip_prefix('f')?;
        let n: u8 = num.parse().ok()?;
        FReg::new(n)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_round_trip_through_display_and_parse() {
        for i in 0..32u8 {
            let r = Reg::new(i).unwrap();
            let shown = r.to_string();
            assert_eq!(Reg::parse(&shown), Some(r), "alias {shown}");
            assert_eq!(Reg::parse(&format!("r{i}")), Some(r));
        }
    }

    #[test]
    fn named_aliases_map_to_documented_indices() {
        assert_eq!(Reg::parse("a0"), Some(Reg::A0));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("sv"), Some(Reg::SV));
        assert_eq!(Reg::parse("t0"), Reg::new(8));
        assert_eq!(Reg::parse("s7"), Reg::new(23));
    }

    #[test]
    fn out_of_range_names_are_rejected() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("a6"), None);
        assert_eq!(Reg::parse("x3"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(FReg::parse("f16"), None);
        assert_eq!(FReg::parse("r1"), None);
    }

    #[test]
    fn freg_round_trips() {
        for i in 0..16u8 {
            let r = FReg::new(i).unwrap();
            assert_eq!(FReg::parse(&r.to_string()), Some(r));
        }
    }
}
