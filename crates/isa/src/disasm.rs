//! Disassembler: turns image text segments back into annotated listings.

use crate::image::Image;
use crate::insn::Insn;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DisasmLine {
    /// Absolute address.
    pub addr: u64,
    /// Raw encoding.
    pub bytes: Vec<u8>,
    /// The decoded instruction, or `None` for undecodable bytes.
    pub insn: Option<Insn>,
}

/// Disassembles a byte slice mapped at `base`.
///
/// Undecodable bytes are consumed one at a time and reported with
/// `insn: None`, so the listing always covers the whole input.
pub fn disassemble(bytes: &[u8], base: u64) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match Insn::decode(&bytes[pos..]) {
            Ok((insn, len)) => {
                out.push(DisasmLine {
                    addr: base + pos as u64,
                    bytes: bytes[pos..pos + len].to_vec(),
                    insn: Some(insn),
                });
                pos += len;
            }
            Err(_) => {
                out.push(DisasmLine {
                    addr: base + pos as u64,
                    bytes: vec![bytes[pos]],
                    insn: None,
                });
                pos += 1;
            }
        }
    }
    out
}

/// Renders an image's text segment as an `objdump`-style listing, with
/// exported symbol names as labels.
pub fn listing(image: &Image) -> String {
    let symbols: BTreeMap<u64, &str> = image
        .symbols
        .iter()
        .map(|(name, addr)| (*addr, name.as_str()))
        .collect();
    let mut out = String::new();
    for line in disassemble(&image.text, image.text_base) {
        if let Some(name) = symbols.get(&line.addr) {
            let _ = writeln!(out, "\n{:#010x} <{name}>:", line.addr);
        }
        let hex: String = line.bytes.iter().map(|b| format!("{b:02x} ")).collect();
        match &line.insn {
            Some(insn) => {
                let _ = writeln!(out, "  {:#010x}:  {hex:<32} {insn}", line.addr);
            }
            None => {
                let _ = writeln!(out, "  {:#010x}:  {hex:<32} .byte", line.addr);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::link::Linker;

    #[test]
    fn round_trips_an_assembled_program() {
        let obj = assemble(
            r#"
            .global _start
        _start:
            li a0, 42
            addi a0, a0, -1
            beq a0, zero, _start
            halt
            "#,
        )
        .unwrap();
        let image = Linker::new().add_object(obj).link().unwrap();
        let lines = disassemble(&image.text, image.text_base);
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.insn.is_some()));
        // Re-encoding each decoded instruction reproduces the bytes.
        for line in &lines {
            let mut buf = Vec::new();
            line.insn.as_ref().unwrap().encode(&mut buf);
            assert_eq!(buf, line.bytes);
        }
    }

    #[test]
    fn listing_includes_symbols_and_mnemonics() {
        let obj = assemble(".global _start\n_start: li a0, 7\nhalt\n").unwrap();
        let image = Linker::new().add_object(obj).link().unwrap();
        let text = listing(&image);
        assert!(text.contains("<_start>"));
        assert!(text.contains("li a0"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn bad_bytes_degrade_to_byte_lines() {
        let lines = disassemble(&[0xFF, 0x41], 0x100);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].insn.is_none());
        assert_eq!(lines[1].insn, Some(Insn::Nop));
    }

    #[test]
    fn disassembly_covers_every_byte_exactly_once() {
        let obj =
            assemble(".global _start\n_start:\nli t0, 0x123456789abcdef\npush t0\npop t1\nret\n")
                .unwrap();
        let image = Linker::new().add_object(obj).link().unwrap();
        let lines = disassemble(&image.text, image.text_base);
        let total: usize = lines.iter().map(|l| l.bytes.len()).sum();
        assert_eq!(total, image.text.len());
        // Addresses are contiguous.
        let mut expect = image.text_base;
        for line in &lines {
            assert_eq!(line.addr, expect);
            expect += line.bytes.len() as u64;
        }
    }
}
