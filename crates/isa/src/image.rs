//! Executable images and the BVM memory layout.

use std::collections::BTreeMap;
use std::fmt;

/// Fixed virtual-memory layout used by the linker and loader.
pub mod layout {
    /// Base address of executable text.
    pub const TEXT_BASE: u64 = 0x1000;
    /// Base address of executable data.
    pub const DATA_BASE: u64 = 0x40_000;
    /// Base address of shared-library text.
    pub const LIB_TEXT_BASE: u64 = 0x400_000;
    /// Base address of shared-library data.
    pub const LIB_DATA_BASE: u64 = 0x500_000;
    /// Base of the heap region (grows upward).
    pub const HEAP_BASE: u64 = 0x600_000;
    /// Size of the heap region in bytes.
    pub const HEAP_SIZE: u64 = 0x100_000;
    /// Top of the main thread's stack (stacks grow downward).
    pub const STACK_TOP: u64 = 0x7FF0_0000;
    /// Bytes reserved per thread stack.
    pub const STACK_SIZE: u64 = 0x1_0000;
    /// Spacing between consecutive thread stack tops.
    pub const STACK_STRIDE: u64 = 0x2_0000;
    /// Region where the loader places `argv` strings and the argv array.
    pub const ARGV_BASE: u64 = 0x7FF1_0000;
    /// Size of the argv region.
    pub const ARGV_SIZE: u64 = 0x1_0000;
    /// Base of the VM-injected stub page (process/thread exit trampolines).
    pub const STUB_BASE: u64 = 0x90_0000;
    /// Address of the process-exit stub (`li sv, EXIT; sys`).
    pub const EXIT_STUB: u64 = STUB_BASE;
    /// Address of the thread-exit stub (`li sv, THREAD_EXIT; sys`).
    pub const THREAD_EXIT_STUB: u64 = STUB_BASE + 32;
}

/// How an import fixup patches memory once the symbol is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// Write the absolute 64-bit symbol address.
    Abs64,
    /// Write `symbol_address - base` as a little-endian `i32`.
    Rel32 {
        /// Absolute address the displacement is relative to (the start of
        /// the referencing instruction).
        base: u64,
    },
}

/// One patch site for an imported symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixup {
    /// Absolute virtual address of the bytes to patch.
    pub addr: u64,
    /// Patch style.
    pub kind: FixupKind,
    /// Constant added to the symbol address.
    pub addend: i64,
}

/// An imported symbol and all its patch sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Symbol name to resolve against a shared library's exports.
    pub symbol: String,
    /// Patch sites.
    pub fixups: Vec<Fixup>,
}

/// Errors from image loading, serialization, or import resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// An imported symbol was not found in the provided exports.
    UnresolvedImport(String),
    /// A fixup address fell outside the image's segments.
    BadFixupAddress(u64),
    /// A `Rel32` displacement overflowed 32 bits.
    RelocOverflow(u64),
    /// The byte serialization was malformed.
    Malformed(&'static str),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::UnresolvedImport(s) => write!(f, "unresolved import `{s}`"),
            ImageError::BadFixupAddress(a) => write!(f, "fixup address {a:#x} outside image"),
            ImageError::RelocOverflow(a) => write!(f, "rel32 overflow at {a:#x}"),
            ImageError::Malformed(what) => write!(f, "malformed image: {what}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A linked executable (or shared-library) image.
///
/// Produced by [`crate::link::Linker`]; loaded by `bomblab-vm`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Entry point address (0 for shared libraries).
    pub entry: u64,
    /// Base address of the text segment.
    pub text_base: u64,
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Base address of the data segment.
    pub data_base: u64,
    /// Data segment bytes.
    pub data: Vec<u8>,
    /// Exported (global) symbols: name → absolute address.
    pub symbols: BTreeMap<String, u64>,
    /// Imports to be resolved against a shared library at load time.
    pub imports: Vec<Import>,
}

const MAGIC: &[u8; 4] = b"BVM1";

impl Image {
    /// Absolute address of an exported symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total size of the loadable segments in bytes (for dataset stats).
    pub fn loadable_size(&self) -> usize {
        self.text.len() + self.data.len()
    }

    /// Patches all imports using `exports` (a shared library's symbol map).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::UnresolvedImport`] if a symbol is missing,
    /// [`ImageError::BadFixupAddress`] for fixups outside the image, and
    /// [`ImageError::RelocOverflow`] if a relative displacement overflows.
    pub fn resolve_imports(&mut self, exports: &BTreeMap<String, u64>) -> Result<(), ImageError> {
        let imports = std::mem::take(&mut self.imports);
        for import in &imports {
            let &addr = exports
                .get(&import.symbol)
                .ok_or_else(|| ImageError::UnresolvedImport(import.symbol.clone()))?;
            for fixup in &import.fixups {
                let target = (addr as i64).wrapping_add(fixup.addend) as u64;
                match fixup.kind {
                    FixupKind::Abs64 => {
                        let bytes = target.to_le_bytes();
                        self.patch(fixup.addr, &bytes)?;
                    }
                    FixupKind::Rel32 { base } => {
                        let delta = target.wrapping_sub(base) as i64;
                        let rel = i32::try_from(delta)
                            .map_err(|_| ImageError::RelocOverflow(fixup.addr))?;
                        self.patch(fixup.addr, &rel.to_le_bytes())?;
                    }
                }
            }
        }
        Ok(())
    }

    fn patch(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ImageError> {
        let seg = |base: u64, data: &mut Vec<u8>| -> Option<(usize, usize)> {
            let off = addr.checked_sub(base)? as usize;
            if off + bytes.len() <= data.len() {
                Some((off, bytes.len()))
            } else {
                None
            }
        };
        if let Some((off, n)) = seg(self.text_base, &mut self.text) {
            self.text[off..off + n].copy_from_slice(bytes);
            return Ok(());
        }
        if let Some((off, n)) = seg(self.data_base, &mut self.data) {
            self.data[off..off + n].copy_from_slice(bytes);
            return Ok(());
        }
        Err(ImageError::BadFixupAddress(addr))
    }

    /// Serializes the image to the `BVM1` on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.entry);
        put_u64(&mut out, self.text_base);
        put_bytes(&mut out, &self.text);
        put_u64(&mut out, self.data_base);
        put_bytes(&mut out, &self.data);
        put_u64(&mut out, self.symbols.len() as u64);
        for (name, addr) in &self.symbols {
            put_str(&mut out, name);
            put_u64(&mut out, *addr);
        }
        put_u64(&mut out, self.imports.len() as u64);
        for import in &self.imports {
            put_str(&mut out, &import.symbol);
            put_u64(&mut out, import.fixups.len() as u64);
            for f in &import.fixups {
                put_u64(&mut out, f.addr);
                match f.kind {
                    FixupKind::Abs64 => {
                        out.push(0);
                        put_u64(&mut out, 0);
                    }
                    FixupKind::Rel32 { base } => {
                        out.push(1);
                        put_u64(&mut out, base);
                    }
                }
                put_u64(&mut out, f.addend as u64);
            }
        }
        out
    }

    /// Deserializes an image from the `BVM1` on-disk format.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Malformed`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, ImageError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ImageError::Malformed("bad magic"));
        }
        let entry = r.u64()?;
        let text_base = r.u64()?;
        let text = r.bytes()?;
        let data_base = r.u64()?;
        let data = r.bytes()?;
        let nsyms = r.u64()? as usize;
        let mut symbols = BTreeMap::new();
        for _ in 0..nsyms {
            let name = r.string()?;
            let addr = r.u64()?;
            symbols.insert(name, addr);
        }
        let nimports = r.u64()? as usize;
        let mut imports = Vec::with_capacity(nimports.min(1024));
        for _ in 0..nimports {
            let symbol = r.string()?;
            let nfix = r.u64()? as usize;
            let mut fixups = Vec::with_capacity(nfix.min(1024));
            for _ in 0..nfix {
                let addr = r.u64()?;
                let tag = r.take(1)?[0];
                let base = r.u64()?;
                let addend = r.u64()? as i64;
                let kind = match tag {
                    0 => FixupKind::Abs64,
                    1 => FixupKind::Rel32 { base },
                    _ => return Err(ImageError::Malformed("bad fixup kind")),
                };
                fixups.push(Fixup { addr, kind, addend });
            }
            imports.push(Import { symbol, fixups });
        }
        if r.pos != bytes.len() {
            return Err(ImageError::Malformed("trailing bytes"));
        }
        Ok(Image {
            entry,
            text_base,
            text,
            data_base,
            data,
            symbols,
            imports,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(ImageError::Malformed("truncated"))?;
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ImageError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() {
            return Err(ImageError::Malformed("length overflow"));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ImageError> {
        String::from_utf8(self.bytes()?).map_err(|_| ImageError::Malformed("bad utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Image {
        Image {
            entry: 0x1000,
            text_base: 0x1000,
            text: vec![0x41, 0x42, 0, 0, 0, 0, 0, 0, 0, 0],
            data_base: 0x40_000,
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
            symbols: [("main".to_string(), 0x1000u64), ("x".to_string(), 0x40_000)]
                .into_iter()
                .collect(),
            imports: vec![Import {
                symbol: "sin".into(),
                fixups: vec![Fixup {
                    addr: 0x1002,
                    kind: FixupKind::Abs64,
                    addend: 0,
                }],
            }],
        }
    }

    #[test]
    fn serialization_round_trips() {
        let img = sample_image();
        let bytes = img.to_bytes();
        let back = Image::from_bytes(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(Image::from_bytes(b"NOPE").is_err());
        let mut bytes = sample_image().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Image::from_bytes(&bytes).is_err());
        let mut extra = sample_image().to_bytes();
        extra.push(0);
        assert_eq!(
            Image::from_bytes(&extra).unwrap_err(),
            ImageError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn resolve_imports_patches_abs64() {
        let mut img = sample_image();
        let exports: BTreeMap<String, u64> =
            [("sin".to_string(), 0x400_100u64)].into_iter().collect();
        img.resolve_imports(&exports).unwrap();
        assert!(img.imports.is_empty());
        assert_eq!(
            u64::from_le_bytes(img.text[2..10].try_into().unwrap()),
            0x400_100
        );
    }

    #[test]
    fn resolve_imports_patches_rel32_in_range() {
        let mut img = sample_image();
        img.imports = vec![Import {
            symbol: "f".into(),
            fixups: vec![Fixup {
                addr: 0x1002,
                kind: FixupKind::Rel32 { base: 0x1001 },
                addend: 0,
            }],
        }];
        let exports: BTreeMap<String, u64> =
            [("f".to_string(), 0x400_000u64)].into_iter().collect();
        img.resolve_imports(&exports).unwrap();
        let rel = i32::from_le_bytes(img.text[2..6].try_into().unwrap());
        assert_eq!(rel as i64, 0x400_000 - 0x1001);
    }

    #[test]
    fn missing_import_is_an_error() {
        let mut img = sample_image();
        let e = img.resolve_imports(&BTreeMap::new()).unwrap_err();
        assert_eq!(e, ImageError::UnresolvedImport("sin".into()));
    }

    #[test]
    fn fixup_outside_image_is_an_error() {
        let mut img = sample_image();
        img.imports[0].fixups[0].addr = 0xdead_0000;
        let exports: BTreeMap<String, u64> = [("sin".to_string(), 1u64)].into_iter().collect();
        assert_eq!(
            img.resolve_imports(&exports).unwrap_err(),
            ImageError::BadFixupAddress(0xdead_0000)
        );
    }

    #[test]
    fn loadable_size_sums_segments() {
        assert_eq!(sample_image().loadable_size(), 18);
    }
}
