//! Static and dynamic linking of relocatable objects into images.

use crate::image::{layout, Fixup, FixupKind, Image, Import};
use crate::obj::{Object, RelocKind, Section};
use std::collections::BTreeMap;
use std::fmt;

/// Linking errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// Two objects define the same global symbol.
    DuplicateSymbol(String),
    /// A referenced symbol is neither defined nor declared `.extern`.
    UndefinedSymbol(String),
    /// The entry symbol was not found.
    MissingEntry(String),
    /// A relative displacement overflowed 32 bits.
    RelocOverflow(String),
    /// A relocation's patch site falls outside its section.
    PatchOutOfBounds(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate global symbol `{s}`"),
            LinkError::UndefinedSymbol(s) => {
                write!(f, "undefined symbol `{s}` (not declared .extern)")
            }
            LinkError::MissingEntry(s) => write!(f, "entry symbol `{s}` not defined"),
            LinkError::RelocOverflow(s) => write!(f, "relative reference to `{s}` overflows"),
            LinkError::PatchOutOfBounds(s) => {
                write!(f, "relocation for `{s}` patches outside its section")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Links one or more [`Object`]s into an executable or shared [`Image`].
///
/// References to symbols declared `.extern` that no added object defines
/// become *imports*, resolved later by [`Image::resolve_imports`] against a
/// shared library.
///
/// # Example
///
/// ```
/// use bomblab_isa::asm::assemble;
/// use bomblab_isa::link::Linker;
///
/// let obj = assemble(".text\n.global _start\n_start: halt\n")?;
/// let image = Linker::new().add_object(obj).link()?;
/// assert_eq!(image.entry, image.text_base);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Linker {
    objects: Vec<Object>,
    shared: bool,
    entry: String,
}

impl Linker {
    /// Creates a linker for an executable with entry symbol `_start`.
    pub fn new() -> Linker {
        Linker {
            objects: Vec::new(),
            shared: false,
            entry: "_start".to_string(),
        }
    }

    /// Adds an object file.
    pub fn add_object(mut self, obj: Object) -> Linker {
        self.objects.push(obj);
        self
    }

    /// Links as a shared library: library layout bases, no entry point, all
    /// global symbols exported.
    pub fn shared(mut self) -> Linker {
        self.shared = true;
        self
    }

    /// Overrides the entry symbol (default `_start`).
    pub fn entry_symbol(mut self, name: impl Into<String>) -> Linker {
        self.entry = name.into();
        self
    }

    /// Performs the link.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] on duplicate globals, references to symbols that
    /// are neither defined nor `.extern`, a missing entry symbol, or
    /// relative-displacement overflow.
    pub fn link(self) -> Result<Image, LinkError> {
        let (text_base, data_base) = if self.shared {
            (layout::LIB_TEXT_BASE, layout::LIB_DATA_BASE)
        } else {
            (layout::TEXT_BASE, layout::DATA_BASE)
        };

        // Lay out each object's sections.
        let mut text = Vec::new();
        let mut data = Vec::new();
        let mut bases = Vec::new(); // (text_off, data_off) per object
        for obj in &self.objects {
            align_to(&mut text, 16);
            align_to(&mut data, 16);
            bases.push((text.len() as u64, data.len() as u64));
            text.extend_from_slice(&obj.text);
            data.extend_from_slice(&obj.data);
        }

        // Global symbol map.
        let mut globals: BTreeMap<String, u64> = BTreeMap::new();
        for (obj, &(t_off, d_off)) in self.objects.iter().zip(&bases) {
            for sym in obj.symbols.iter().filter(|s| s.global) {
                let addr = match sym.section {
                    Section::Text => text_base + t_off + sym.offset,
                    Section::Data => data_base + d_off + sym.offset,
                };
                if globals.insert(sym.name.clone(), addr).is_some() {
                    return Err(LinkError::DuplicateSymbol(sym.name.clone()));
                }
            }
        }

        // Collect the union of extern declarations.
        let externs: Vec<&str> = self
            .objects
            .iter()
            .flat_map(|o| o.externs.iter().map(String::as_str))
            .collect();

        // Resolve relocations.
        let mut imports: BTreeMap<String, Vec<Fixup>> = BTreeMap::new();
        for (obj, &(t_off, d_off)) in self.objects.iter().zip(&bases) {
            for reloc in &obj.relocs {
                let (seg_base, seg_off) = match reloc.section {
                    Section::Text => (text_base, t_off),
                    Section::Data => (data_base, d_off),
                };
                let patch_addr = seg_base + seg_off + reloc.offset;
                // Local symbols shadow globals.
                let local = obj.symbol(&reloc.symbol).map(|s| match s.section {
                    Section::Text => text_base + t_off + s.offset,
                    Section::Data => data_base + d_off + s.offset,
                });
                let resolved = local.or_else(|| globals.get(&reloc.symbol).copied());
                let kind = match reloc.kind {
                    RelocKind::Abs64 => FixupKind::Abs64,
                    RelocKind::Rel32 { base } => FixupKind::Rel32 {
                        base: seg_base + seg_off + base,
                    },
                };
                match resolved {
                    Some(sym_addr) => {
                        let target = (sym_addr as i64).wrapping_add(reloc.addend) as u64;
                        let buf = match reloc.section {
                            Section::Text => &mut text,
                            Section::Data => &mut data,
                        };

                        let off = (seg_off + reloc.offset) as usize;
                        match kind {
                            FixupKind::Abs64 => {
                                buf.get_mut(off..off + 8)
                                    .ok_or_else(|| {
                                        LinkError::PatchOutOfBounds(reloc.symbol.clone())
                                    })?
                                    .copy_from_slice(&target.to_le_bytes());
                            }
                            FixupKind::Rel32 { base } => {
                                let delta = target.wrapping_sub(base) as i64;
                                let rel = i32::try_from(delta)
                                    .map_err(|_| LinkError::RelocOverflow(reloc.symbol.clone()))?;
                                buf.get_mut(off..off + 4)
                                    .ok_or_else(|| {
                                        LinkError::PatchOutOfBounds(reloc.symbol.clone())
                                    })?
                                    .copy_from_slice(&rel.to_le_bytes());
                            }
                        }
                    }
                    None => {
                        if !externs.contains(&reloc.symbol.as_str()) {
                            return Err(LinkError::UndefinedSymbol(reloc.symbol.clone()));
                        }
                        imports
                            .entry(reloc.symbol.clone())
                            .or_default()
                            .push(Fixup {
                                addr: patch_addr,
                                kind,
                                addend: reloc.addend,
                            });
                    }
                }
            }
        }

        let entry = if self.shared {
            0
        } else {
            *globals
                .get(&self.entry)
                .ok_or_else(|| LinkError::MissingEntry(self.entry.clone()))?
        };

        Ok(Image {
            entry,
            text_base,
            text,
            data_base,
            data,
            symbols: globals,
            imports: imports
                .into_iter()
                .map(|(symbol, fixups)| Import { symbol, fixups })
                .collect(),
        })
    }
}

fn align_to(buf: &mut Vec<u8>, align: usize) {
    let pad = (align - (buf.len() % align)) % align;
    buf.extend(std::iter::repeat_n(0u8, pad));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::insn::Insn;

    #[test]
    fn single_object_executable_links() {
        let obj = assemble(
            r#"
            .text
            .global _start
        _start:
            li a0, 1
            jmp done
            nop
        done:
            halt
            "#,
        )
        .unwrap();
        let img = Linker::new().add_object(obj).link().unwrap();
        assert_eq!(img.entry, layout::TEXT_BASE);
        // Decode the jmp and check the displacement lands on `done`.
        let (li, l1) = Insn::decode(&img.text).unwrap();
        assert!(matches!(li, Insn::Li { .. }));
        let (jmp, _) = Insn::decode(&img.text[l1..]).unwrap();
        match jmp {
            Insn::Jmp { rel } => {
                let jmp_addr = layout::TEXT_BASE + l1 as u64;
                let done = img.symbols.get("done").copied();
                // `done` is local (not .global) so it is not exported;
                // compute from layout instead: li(10) + jmp(5) + nop(1).
                assert_eq!(done, None);
                assert_eq!(
                    jmp_addr.wrapping_add(rel as i64 as u64),
                    layout::TEXT_BASE + 16
                );
            }
            other => panic!("expected jmp, got {other}"),
        }
    }

    #[test]
    fn cross_object_call_resolves() {
        let a = assemble(
            r#"
            .extern helper
            .global _start
        _start:
            call helper
            halt
            "#,
        )
        .unwrap();
        let b = assemble(
            r#"
            .global helper
        helper:
            ret
            "#,
        )
        .unwrap();
        let img = Linker::new().add_object(a).add_object(b).link().unwrap();
        assert!(img.imports.is_empty());
        let (call, _) = Insn::decode(&img.text).unwrap();
        match call {
            Insn::Call { rel } => {
                let target = layout::TEXT_BASE.wrapping_add(rel as i64 as u64);
                assert_eq!(Some(target), img.symbol("helper"));
            }
            other => panic!("expected call, got {other}"),
        }
    }

    #[test]
    fn unresolved_extern_becomes_import() {
        let a = assemble(
            r#"
            .extern sin
            .global _start
        _start:
            call sin
            halt
            "#,
        )
        .unwrap();
        let img = Linker::new().add_object(a).link().unwrap();
        assert_eq!(img.imports.len(), 1);
        assert_eq!(img.imports[0].symbol, "sin");
        assert_eq!(img.imports[0].fixups.len(), 1);
    }

    #[test]
    fn import_resolves_against_shared_library() {
        let lib = assemble(
            r#"
            .global sin
        sin:
            ret
            "#,
        )
        .unwrap();
        let lib_img = Linker::new().shared().add_object(lib).link().unwrap();
        assert_eq!(lib_img.entry, 0);
        assert_eq!(lib_img.text_base, layout::LIB_TEXT_BASE);

        let exe = assemble(
            r#"
            .extern sin
            .global _start
        _start:
            call sin
            halt
            "#,
        )
        .unwrap();
        let mut exe_img = Linker::new().add_object(exe).link().unwrap();
        exe_img.resolve_imports(&lib_img.symbols).unwrap();
        let (call, _) = Insn::decode(&exe_img.text).unwrap();
        match call {
            Insn::Call { rel } => {
                let target = layout::TEXT_BASE.wrapping_add(rel as i64 as u64);
                assert_eq!(Some(target), lib_img.symbol("sin"));
            }
            other => panic!("expected call, got {other}"),
        }
    }

    #[test]
    fn undefined_symbol_without_extern_errors() {
        let a = assemble(".global _start\n_start:\ncall nowhere\n").unwrap();
        assert_eq!(
            Linker::new().add_object(a).link().unwrap_err(),
            LinkError::UndefinedSymbol("nowhere".into())
        );
    }

    #[test]
    fn duplicate_globals_error() {
        let a = assemble(".global f\nf: ret\n.global _start\n_start: halt").unwrap();
        let b = assemble(".global f\nf: ret\n").unwrap();
        assert_eq!(
            Linker::new()
                .add_object(a)
                .add_object(b)
                .link()
                .unwrap_err(),
            LinkError::DuplicateSymbol("f".into())
        );
    }

    #[test]
    fn missing_entry_errors() {
        let a = assemble("nop").unwrap();
        assert_eq!(
            Linker::new().add_object(a).link().unwrap_err(),
            LinkError::MissingEntry("_start".into())
        );
    }

    #[test]
    fn data_references_from_text_resolve() {
        let a = assemble(
            r#"
            .data
        greeting: .asciz "hey"
            .text
            .global _start
        _start:
            li a1, greeting
            halt
            "#,
        )
        .unwrap();
        let img = Linker::new().add_object(a).link().unwrap();
        let (li, _) = Insn::decode(&img.text).unwrap();
        match li {
            Insn::Li { imm, .. } => {
                assert_eq!(imm, layout::DATA_BASE);
                assert_eq!(&img.data[..4], b"hey\0");
            }
            other => panic!("expected li, got {other}"),
        }
    }

    #[test]
    fn out_of_bounds_patch_site_is_a_link_error_not_a_panic() {
        // A hand-built object whose relocation points past the end of its
        // text section: the linker must report it, not unwind.
        use crate::obj::{Object, Reloc, RelocKind, Section, Symbol};
        let mut obj = Object::new();
        obj.text = vec![0u8; 4];
        obj.symbols.push(Symbol {
            name: "_start".into(),
            section: Section::Text,
            offset: 0,
            global: true,
        });
        obj.relocs.push(Reloc {
            section: Section::Text,
            offset: 2, // patch needs bytes 2..10, but text is 4 bytes long
            kind: RelocKind::Abs64,
            symbol: "_start".into(),
            addend: 0,
        });
        assert_eq!(
            Linker::new().add_object(obj).link().unwrap_err(),
            LinkError::PatchOutOfBounds("_start".into())
        );
    }
}
