//! Relocatable object files produced by the assembler and consumed by the
//! linker.

use std::collections::BTreeMap;
use std::fmt;

/// The section a symbol or relocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Executable code.
    Text,
    /// Initialized data (also used for zero-filled space).
    Data,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Text => write!(f, ".text"),
            Section::Data => write!(f, ".data"),
        }
    }
}

/// A defined symbol: a named offset within a section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Section the symbol is defined in.
    pub section: Section,
    /// Byte offset within the section.
    pub offset: u64,
    /// Whether the symbol is visible to other objects (`.global`).
    pub global: bool,
}

/// How a relocation patches bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// Write the symbol's absolute 64-bit address at the patch offset.
    Abs64,
    /// Write `symbol_address - base_address` as a little-endian `i32`,
    /// where `base` is the section offset of the referencing instruction.
    Rel32 {
        /// Section offset of the start of the referencing instruction.
        base: u64,
    },
}

/// A pending reference to a symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Section containing the bytes to patch.
    pub section: Section,
    /// Byte offset of the patch location within the section.
    pub offset: u64,
    /// Patch style.
    pub kind: RelocKind,
    /// Name of the referenced symbol.
    pub symbol: String,
    /// Constant added to the symbol address before patching.
    pub addend: i64,
}

/// A relocatable object file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Object {
    /// Code bytes.
    pub text: Vec<u8>,
    /// Data bytes.
    pub data: Vec<u8>,
    /// Defined symbols.
    pub symbols: Vec<Symbol>,
    /// Unresolved references.
    pub relocs: Vec<Reloc>,
    /// Symbols declared `.extern` (expected to be defined elsewhere).
    pub externs: Vec<String>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Looks up a defined symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Map of global symbol name → (section, offset).
    pub fn globals(&self) -> BTreeMap<&str, (Section, u64)> {
        self.symbols
            .iter()
            .filter(|s| s.global)
            .map(|s| (s.name.as_str(), (s.section, s.offset)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_filters_local_symbols() {
        let mut o = Object::new();
        o.symbols.push(Symbol {
            name: "main".into(),
            section: Section::Text,
            offset: 0,
            global: true,
        });
        o.symbols.push(Symbol {
            name: "loop".into(),
            section: Section::Text,
            offset: 8,
            global: false,
        });
        let g = o.globals();
        assert_eq!(g.len(), 1);
        assert_eq!(g["main"], (Section::Text, 0));
        assert!(o.symbol("loop").is_some());
        assert!(o.symbol("nope").is_none());
    }
}
