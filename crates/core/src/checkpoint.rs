//! Checkpoint journal: durable, resumable studies.
//!
//! A long study is a batch of (bomb, profile) cells; a killed process
//! must not lose the cells that already finished. The journal is a
//! JSONL file (`journal.jsonl` inside the `--checkpoint` directory)
//! holding one versioned, CRC-checksummed record per completed cell —
//! the *report-critical digest* of the cell: outcome, expected label,
//! crash diagnostic, fault log, and the headline counters. On
//! `--resume`, valid records are replayed instead of re-executed and
//! only the remainder of the matrix runs; the final Table-II report is
//! byte-identical to an uninterrupted run.
//!
//! Durability model:
//!
//! * Every append rewrites the whole journal to a tmp file and
//!   publishes it with an atomic rename, so the on-disk file is always
//!   either the old or the new complete journal — never a mix. (The
//!   matrix is at most a few hundred cells, so the O(n²) rewrite cost
//!   is microseconds; in exchange a torn write never survives past the
//!   next successful append.)
//! * Each line is `crc32hex<space>json`. The loader verifies every
//!   checksum and stops at the first bad line, dropping the torn tail
//!   — a kill mid-write degrades into "re-run the last cell", never an
//!   error.
//! * The header record carries the journal format version and a
//!   fingerprint of the study configuration (cases, profiles, fault
//!   plan, retry budget). A mismatched journal is ignored wholesale:
//!   resuming a *different* study must not splice foreign cells into
//!   the report.
//!
//! The write and rename paths carry [`bomblab_fault`] fault points
//! ([`FaultSite::CheckpointWrite`], [`FaultSite::CheckpointRename`]) so
//! chaos sweeps can exercise torn writes and failed renames
//! deterministically.

use crate::engine::CrashDiag;
use crate::outcome::Outcome;
use bomblab_fault as fault;
use bomblab_fault::{FaultAction, FaultSite};
use bomblab_obs::json::{self, str_array, Json, Obj};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Journal format version; bump on any incompatible record change.
pub const JOURNAL_VERSION: u64 = 1;

/// File name of the journal inside the checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// CRC-32 (IEEE), bitwise — the journal is small and has no business
/// pulling in a lookup table, let alone a dependency.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over a sequence of strings, with a separator fold between
/// parts so `["ab","c"]` and `["a","bc"]` hash differently. Used to
/// fingerprint the study configuration in the journal header.
pub fn fingerprint<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325_u64;
    let mut fold = |byte: u64| {
        h ^= byte;
        h = h.wrapping_mul(0x100_0000_01B3);
    };
    for part in parts {
        for &b in part.as_bytes() {
            fold(u64::from(b));
        }
        fold(0x1FF);
    }
    h
}

/// The report-critical digest of one completed cell. Everything
/// [`crate::study::StudyReport::to_markdown`] reads about a cell is
/// here, so a replayed cell renders byte-identically; evidence counters
/// that only feed traces and benchmarks keep their defaults on replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Flat cell index: `row * profiles + column`.
    pub index: u64,
    /// Case name (sanity cross-check against the fingerprint).
    pub bomb: String,
    /// Profile name.
    pub profile: String,
    /// The outcome our engine produced.
    pub outcome: Outcome,
    /// The paper's label for the cell, when known.
    pub expected: Option<Outcome>,
    /// Wall-clock nanoseconds of the winning attempt.
    pub wall_ns: u64,
    /// Engine rounds of the winning attempt.
    pub rounds: u32,
    /// Solver queries of the winning attempt.
    pub queries: u32,
    /// Faults injected into the winning attempt.
    pub injected_faults: u32,
    /// Human-readable log of the injected faults.
    pub fault_log: Vec<String>,
    /// Contained crash diagnostic, if the cell crashed.
    pub crash: Option<CrashDiag>,
    /// Extra attempts the retry loop spent on this cell.
    pub retries: u32,
    /// The cell was quarantined as a deterministic failure.
    pub quarantined: bool,
    /// Total scheduled backoff before retries, in nanoseconds.
    pub retry_backoff_ns: u64,
}

impl CellRecord {
    fn to_json(&self) -> String {
        let mut o = Obj::new("cell_ckpt")
            .u64("index", self.index)
            .str("bomb", &self.bomb)
            .str("profile", &self.profile)
            .str("outcome", self.outcome.glyph())
            .u64("wall_ns", self.wall_ns)
            .u64("rounds", u64::from(self.rounds))
            .u64("queries", u64::from(self.queries));
        if let Some(e) = self.expected {
            o = o.str("expected", e.glyph());
        }
        if self.injected_faults > 0 {
            o = o.u64("injected_faults", u64::from(self.injected_faults));
        }
        if !self.fault_log.is_empty() {
            o = o.raw("fault_log", &str_array(&self.fault_log));
        }
        if let Some(c) = &self.crash {
            o = o
                .str("crash_stage", &c.stage)
                .str("crash_message", &c.message)
                .u64("crash_elapsed_ns", c.elapsed_ns);
        }
        if self.retries > 0 {
            o = o.u64("retries", u64::from(self.retries));
        }
        if self.quarantined {
            o = o.bool("quarantined", true);
        }
        if self.retry_backoff_ns > 0 {
            o = o.u64("retry_backoff_ns", self.retry_backoff_ns);
        }
        o.finish()
    }

    fn from_json(text: &str) -> Result<CellRecord, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj().ok_or("record is not an object")?;
        let str_of = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let u64_of = |key: &str| obj.get(key).and_then(Json::as_u64);
        if str_of("type")? != "cell_ckpt" {
            return Err("not a cell record".to_string());
        }
        let outcome_of = |key: &str| -> Result<Outcome, String> {
            let glyph = str_of(key)?;
            Outcome::from_glyph(&glyph).ok_or_else(|| format!("unknown outcome glyph `{glyph}`"))
        };
        let crash = match (obj.get("crash_stage"), obj.get("crash_message")) {
            (Some(_), Some(_)) => Some(CrashDiag {
                stage: str_of("crash_stage")?,
                message: str_of("crash_message")?,
                elapsed_ns: u64_of("crash_elapsed_ns").unwrap_or(0),
            }),
            (None, None) => None,
            _ => return Err("half a crash diagnostic".to_string()),
        };
        let fault_log = match obj.get("fault_log") {
            None => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string fault_log entry".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
            Some(_) => return Err("fault_log is not an array".to_string()),
        };
        Ok(CellRecord {
            index: u64_of("index").ok_or("missing index")?,
            bomb: str_of("bomb")?,
            profile: str_of("profile")?,
            outcome: outcome_of("outcome")?,
            expected: match obj.get("expected") {
                Some(_) => Some(outcome_of("expected")?),
                None => None,
            },
            wall_ns: u64_of("wall_ns").unwrap_or(0),
            rounds: u64_of("rounds").unwrap_or(0) as u32,
            queries: u64_of("queries").unwrap_or(0) as u32,
            injected_faults: u64_of("injected_faults").unwrap_or(0) as u32,
            fault_log,
            crash,
            retries: u64_of("retries").unwrap_or(0) as u32,
            quarantined: matches!(obj.get("quarantined"), Some(Json::Bool(true))),
            retry_backoff_ns: u64_of("retry_backoff_ns").unwrap_or(0),
        })
    }
}

/// An open checkpoint journal. All writes go through
/// [`Journal::append`], which rewrites the file atomically; the study
/// runner serializes appends behind a mutex.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    /// Exactly the valid on-disk lines (header first).
    lines: Vec<String>,
}

impl Journal {
    /// Opens (and immediately publishes) the journal in `dir`.
    ///
    /// With `resume`, previously completed cells whose records survive
    /// checksum validation under a matching header are returned for
    /// replay; a missing, torn, or foreign (fingerprint-mismatched)
    /// journal yields an empty map and a fresh journal — resuming is
    /// never fatal. Without `resume`, any existing journal is
    /// truncated.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created or
    /// the fresh journal cannot be published.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        resume: bool,
    ) -> io::Result<(Journal, HashMap<u64, CellRecord>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut lines = Vec::new();
        let mut completed = HashMap::new();
        if resume {
            if let Ok(text) = fs::read_to_string(&path) {
                (lines, completed) = load_valid(&text, fingerprint);
            }
        }
        if lines.is_empty() {
            let header = Obj::new("ckpt_header")
                .u64("v", JOURNAL_VERSION)
                .u64("fingerprint", fingerprint)
                .finish();
            lines.push(format!("{:08x} {header}", crc32(header.as_bytes())));
        }
        let journal = Journal { path, lines };
        // Publish right away: a kill before the first cell completes
        // must still leave a valid (if empty) journal, and a non-resume
        // open must not leave a stale journal from an earlier study.
        journal.rewrite()?;
        Ok((journal, completed))
    }

    /// Records one completed cell. The whole journal is rewritten to a
    /// tmp file and renamed into place, so a crash at any byte leaves
    /// either the previous or the new journal (or a torn tmp the loader
    /// never reads).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the study treats it as a
    /// transient condition (the record lives on in memory and the next
    /// successful append re-publishes it).
    pub fn append(&mut self, record: &CellRecord) -> io::Result<()> {
        let payload = record.to_json();
        self.lines
            .push(format!("{:08x} {payload}", crc32(payload.as_bytes())));
        self.rewrite()
    }

    /// Number of cell records currently published (header excluded).
    #[must_use]
    pub fn records(&self) -> usize {
        self.lines.len().saturating_sub(1)
    }

    fn rewrite(&self) -> io::Result<()> {
        let mut bytes = self.lines.join("\n").into_bytes();
        bytes.push(b'\n');
        match fault::fault_point(FaultSite::CheckpointWrite) {
            Some(FaultAction::TornWrite) => {
                // Power loss mid-write: the tail of the last record —
                // checksum and all — never reaches the disk.
                bytes.truncate(bytes.len().saturating_sub(9));
            }
            Some(FaultAction::Panic) => panic!("injected checkpoint write failure"),
            _ => {}
        }
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
        }
        match fault::fault_point(FaultSite::CheckpointRename) {
            Some(FaultAction::RenameFail) => {
                let _ = fs::remove_file(&tmp);
                return Err(io::Error::other("injected rename failure"));
            }
            Some(FaultAction::Panic) => panic!("injected checkpoint rename failure"),
            _ => {}
        }
        fs::rename(&tmp, &self.path)
    }
}

/// Parses the journal text: header (version + fingerprint) then cell
/// records, each CRC-verified. Stops at the first invalid line and
/// drops everything after it; a bad header drops the whole journal.
fn load_valid(text: &str, fingerprint: u64) -> (Vec<String>, HashMap<u64, CellRecord>) {
    let mut kept = Vec::new();
    let mut completed = HashMap::new();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return (kept, completed);
    };
    let Some(header_json) = checked_payload(first) else {
        return (kept, completed);
    };
    let header_ok = json::parse(header_json).ok().is_some_and(|v| {
        v.as_obj().is_some_and(|o| {
            o.get("type").and_then(Json::as_str) == Some("ckpt_header")
                && o.get("v").and_then(Json::as_u64) == Some(JOURNAL_VERSION)
                && o.get("fingerprint").and_then(Json::as_u64) == Some(fingerprint)
        })
    });
    if !header_ok {
        return (kept, completed);
    }
    kept.push(first.to_string());
    for line in lines {
        let Some(payload) = checked_payload(line) else {
            break;
        };
        let Ok(record) = CellRecord::from_json(payload) else {
            break;
        };
        kept.push(line.to_string());
        completed.insert(record.index, record);
    }
    (kept, completed)
}

/// Historical per-cell wall-clock costs from the journal in `dir`, keyed
/// by `(bomb, profile)` name — scheduler fuel for the study runner's
/// longest-processing-time-first cell ordering.
///
/// Deliberately *fingerprint-agnostic*, unlike [`Journal::open`]: a cell's
/// cost is a fine scheduling hint even when the journal was written by a
/// study with a different plan, retry policy, or deadline — the worst a
/// stale cost can do is order cells suboptimally, never change a result.
/// Each line still has to pass its CRC (a torn record is noise, not a
/// cost), and unknown `(bomb, profile)` pairs are simply ignored by the
/// scheduler. Duplicated pairs keep the *latest* record, matching the
/// journal's replay semantics. Any read failure yields an empty map.
///
/// Call this *before* [`Journal::open`] when the study is not resuming:
/// a non-resume open truncates the journal, costs and all.
#[must_use]
pub fn load_costs(dir: &Path) -> HashMap<(String, String), u64> {
    let mut costs = HashMap::new();
    let Ok(text) = fs::read_to_string(dir.join(JOURNAL_FILE)) else {
        return costs;
    };
    for line in text.lines().skip(1) {
        let Some(payload) = checked_payload(line) else {
            break;
        };
        let Ok(record) = CellRecord::from_json(payload) else {
            break;
        };
        costs.insert((record.bomb, record.profile), record.wall_ns);
    }
    costs
}

/// Splits a `crc32hex json` line and returns the payload iff the
/// checksum verifies.
fn checked_payload(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_once(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc == crc32(payload.as_bytes())).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64) -> CellRecord {
        CellRecord {
            index,
            bomb: format!("bomb_{index}"),
            profile: "triton".to_string(),
            outcome: Outcome::Abnormal,
            expected: Some(Outcome::Solved),
            wall_ns: 1234,
            rounds: 3,
            queries: 7,
            injected_faults: 1,
            fault_log: vec!["engine_round@1=panic".to_string()],
            crash: Some(CrashDiag {
                message: "injected panic".to_string(),
                stage: "symex".to_string(),
                elapsed_ns: 99,
            }),
            retries: 2,
            quarantined: true,
            retry_backoff_ns: 30_000_000,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        for rec in [
            record(5),
            CellRecord {
                expected: None,
                crash: None,
                fault_log: Vec::new(),
                injected_faults: 0,
                retries: 0,
                quarantined: false,
                retry_backoff_ns: 0,
                ..record(0)
            },
        ] {
            let json = rec.to_json();
            assert_eq!(CellRecord::from_json(&json).unwrap(), rec, "{json}");
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bomblab-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_resume_replays_every_record() {
        let dir = tmp_dir("replay");
        let fp = fingerprint(["a", "b"]);
        let (mut journal, completed) = Journal::open(&dir, fp, false).unwrap();
        assert!(completed.is_empty());
        for i in 0..4 {
            journal.append(&record(i)).unwrap();
        }
        let (journal, completed) = Journal::open(&dir, fp, true).unwrap();
        assert_eq!(journal.records(), 4);
        assert_eq!(completed.len(), 4);
        assert_eq!(completed[&2], record(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_are_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        let fp = fingerprint(["x"]);
        let (mut journal, _) = Journal::open(&dir, fp, false).unwrap();
        for i in 0..3 {
            journal.append(&record(i)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let text = fs::read_to_string(&path).unwrap();
        // Cutting only the trailing newline keeps the last record; any
        // cut into the record itself drops it (and nothing else).
        for (cut, survivors) in [
            (text.len() - 1, 3),
            (text.len() - 10, 2),
            (text.len() - 25, 2),
        ] {
            fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            let (_, completed) = Journal::open(&dir, fp, true).unwrap();
            assert_eq!(completed.len(), survivors, "cut at {cut}");
        }
        // Corrupt a middle record: everything after it is dropped too.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[2] = lines[2].replace("bomb_1", "bomb_X");
        fs::write(&path, lines.join("\n")).unwrap();
        let (_, completed) = Journal::open(&dir, fp, true).unwrap();
        assert_eq!(completed.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_journals_are_ignored_wholesale() {
        let dir = tmp_dir("foreign");
        let (mut journal, _) = Journal::open(&dir, fingerprint(["study-a"]), false).unwrap();
        journal.append(&record(0)).unwrap();
        let (_, completed) = Journal::open(&dir, fingerprint(["study-b"]), true).unwrap();
        assert!(completed.is_empty(), "a foreign journal must not replay");
        // And the open truncated it for the new fingerprint.
        let (_, completed) = Journal::open(&dir, fingerprint(["study-b"]), true).unwrap();
        assert!(completed.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_truncates() {
        let dir = tmp_dir("trunc");
        let fp = fingerprint(["s"]);
        let (mut journal, _) = Journal::open(&dir, fp, false).unwrap();
        journal.append(&record(0)).unwrap();
        let (_, completed) = Journal::open(&dir, fp, false).unwrap();
        assert!(completed.is_empty());
        let (_, completed) = Journal::open(&dir, fp, true).unwrap();
        assert!(
            completed.is_empty(),
            "the non-resume open wiped the records"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_costs_is_fingerprint_agnostic_and_crc_guarded() {
        let dir = tmp_dir("costs");
        let (mut journal, _) = Journal::open(&dir, fingerprint(["study-a"]), false).unwrap();
        for i in 0..3 {
            journal
                .append(&CellRecord {
                    wall_ns: 1_000 * (i + 1),
                    ..record(i)
                })
                .unwrap();
        }
        // A later record for the same (bomb, profile) supersedes.
        journal
            .append(&CellRecord {
                wall_ns: 9_999,
                ..record(1)
            })
            .unwrap();
        let costs = load_costs(&dir);
        assert_eq!(costs.len(), 3);
        assert_eq!(
            costs[&("bomb_1".to_string(), "triton".to_string())],
            9_999,
            "latest record wins"
        );
        // Costs load even though the asking study has a different
        // fingerprint — stale costs are hints, not results.
        assert_eq!(costs[&("bomb_0".to_string(), "triton".to_string())], 1_000);
        // Corrupt a middle record: it and everything after are dropped.
        let path = dir.join(JOURNAL_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[2] = lines[2].replace("bomb_1", "bomb_X");
        fs::write(&path, lines.join("\n")).unwrap();
        let costs = load_costs(&dir);
        assert_eq!(costs.len(), 1);
        // A missing journal yields an empty map, never an error.
        let _ = fs::remove_dir_all(&dir);
        assert!(load_costs(&dir).is_empty());
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["ab", "c"]), fingerprint(["ab", "c"]));
    }

    #[test]
    fn crc32_matches_the_ieee_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
