//! The concolic engine: the paper's Figure-1 loop, parameterized by a
//! [`ToolProfile`], plus the failure diagnosis that produces Table II's
//! outcome labels.

use crate::outcome::Outcome;
use crate::profile::{ArgvModel, EngineStyle, ToolProfile, TrapSupport};
use crate::world::WorldInput;
use bomblab_fault as fault;
use bomblab_ir::lift;
use bomblab_isa::image::{layout, Image};
use bomblab_obs as obs;
use bomblab_solver::expr::{CmpOp, Term};
use bomblab_solver::{DiskCache, ShardCache, SolveOutcome, Solver, UnknownReason};
use bomblab_symex::{SymExec, SymbolizeEnv};
use bomblab_taint::{TaintEngine, TaintPolicy};
use bomblab_vm::{Machine, RunStatus, Trace, BOOM_EXIT_CODE, ROOT_PID};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// A program under test.
#[derive(Debug, Clone)]
pub struct Subject {
    /// Display name.
    pub name: String,
    /// The executable image.
    pub image: Image,
    /// Shared library for dynamically linked subjects.
    pub lib: Option<Image>,
    /// The seed input (must not detonate).
    pub seed: WorldInput,
}

impl Subject {
    /// Address of `argv[1]`'s string bytes in the loader layout.
    pub fn argv1_addr(&self) -> u64 {
        // Two pointers, then "bomb\0".
        layout::ARGV_BASE + 16 + 5
    }

    /// Runs the subject once and reports whether it detonates.
    pub fn detonates(&self, input: &WorldInput, step_budget: u64) -> bool {
        let config = input.to_config(false, step_budget);
        let Ok(mut machine) = Machine::load(&self.image, self.lib.as_ref(), config) else {
            return false;
        };
        machine.run().status.exit_code() == Some(BOOM_EXIT_CODE)
    }
}

/// Statically proven facts the engine may use to prune symbolic work,
/// computed ahead of execution by the `bomblab-sa` analyzer.
#[derive(Debug, Clone, Default)]
pub struct StaticHints {
    /// Branch edges `(pc, direction)` proved infeasible in every analyzed
    /// context: flipping onto one can never yield a satisfiable query, so
    /// the solver call is skipped outright.
    pub infeasible_edges: BTreeSet<(u64, bool)>,
    /// Fully resolved indirect-jump target sets, keyed by `jr` site pc.
    /// A pinned jump whose static target set is a singleton loses no
    /// paths, so it is not evidence of a symbolic-jump modeling gap.
    pub jr_targets: BTreeMap<u64, BTreeSet<u64>>,
    /// Whether the data-flow products below were armed. Gates the flip
    /// scheduler, independence skips, and slice cross-checks — all off
    /// for the paper-tool profiles.
    pub dataflow_armed: bool,
    /// Branch sites the static taint closure proved input-independent:
    /// no tainted definition reaches their condition, so flipping them
    /// cannot move input-dependent control flow.
    pub independent_branches: BTreeSet<u64>,
    /// Flip-priority score per branch site (taint distance, loop depth,
    /// `bomb_boom` guard structure). Higher = flip earlier.
    pub flip_priority: BTreeMap<u64, i64>,
    /// Branch pc -> static input-source mask reaching its condition,
    /// for cross-checking the dynamic cone of influence.
    pub branch_sources: BTreeMap<u64, u8>,
}

impl StaticHints {
    /// Extracts the prunable facts from a static analysis, keeping only
    /// results the analyzer itself vouches for (`resolve_sound`).
    pub fn from_analysis(analysis: &bomblab_sa::Analysis) -> StaticHints {
        if !analysis.resolve_sound {
            return StaticHints::default();
        }
        StaticHints {
            infeasible_edges: analysis.infeasible_edges(),
            jr_targets: analysis.jr_targets(),
            ..StaticHints::default()
        }
    }

    /// Additionally arms the interprocedural data-flow products
    /// (independence proofs, flip priorities, slice masks). Separate from
    /// [`StaticHints::from_analysis`] so the paper-tool profiles keep
    /// their 2017-faithful flip behaviour; only profiles with
    /// `use_dataflow_hints` call this. A no-op unless the analyzer
    /// vouches for its own resolution (`resolve_sound`).
    #[must_use]
    pub fn with_dataflow(mut self, analysis: &bomblab_sa::Analysis) -> StaticHints {
        if !analysis.resolve_sound {
            return self;
        }
        let t = &analysis.dataflow.taint;
        self.dataflow_armed = true;
        self.independent_branches = t.independent.clone();
        self.flip_priority = t.priority.clone();
        self.branch_sources = t.tainted_branches.clone();
        self
    }
}

/// Classifies the variables of a dynamic branch condition into the
/// static analyzer's input-source mask space: `arg1_*` bytes are argv,
/// everything else (stdin, time, network, syscall and library returns)
/// is environment-derived.
fn dyn_source_mask(cond: &bomblab_symex::PathCond) -> u8 {
    let mut mask = 0u8;
    for name in cond.cond_var_names() {
        if name.starts_with("arg1_") {
            mask |= bomblab_sa::SRC_ARGV;
        } else {
            mask |= bomblab_sa::SRC_ENV;
        }
    }
    mask
}

/// Collapses a source mask to two classes — argv vs everything else —
/// so the static/dynamic slice comparison is not sensitive to how the
/// analyzer subdivides environment sources (env vs file descriptors).
fn source_class(mask: u8) -> u8 {
    let argv = mask & bomblab_sa::SRC_ARGV;
    let other = u8::from(mask & !bomblab_sa::SRC_ARGV != 0) << 1;
    argv | other
}

/// What the engine observed while exploring (the raw material of the
/// outcome label).
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// The VM step budget was exhausted.
    pub vm_budget: bool,
    /// The tool aborted (unsupported syscall, emulator crash).
    pub abnormal: bool,
    /// A solver query blew its budget or the formula-size cap.
    pub solver_budget: bool,
    /// A tainted instruction could not be lifted.
    pub lift_failure: bool,
    /// A query contained floating-point constraints the solver rejects.
    pub float_unsupported: bool,
    /// The profile's taint saw at least one symbolic branch.
    pub saw_tainted_branches: bool,
    /// The profile's taint recorded dropped flows.
    pub taint_losses: bool,
    /// Symbolic syscall arguments / numbers were observed (contextual).
    pub ctx_events: bool,
    /// Symbolic executor concretized loads / exceeded indirection.
    pub concretization: bool,
    /// Highest pinned-jump target depth observed, if any.
    pub pinned_jump_lvl: Option<u32>,
    /// Symbolic flows dropped by the symbolic executor's policy.
    pub dropped_sym_flows: bool,
    /// A satisfiable flip depended on simulated syscall returns.
    pub sim_query_sysret: bool,
    /// A satisfiable flip depended on unconstrained library summaries.
    pub sim_query_libret: bool,
    /// Flip queries skipped because static analysis proved the edge
    /// infeasible (no solver call issued).
    pub pruned_flips: u32,
    /// Branch sites the static taint closure proved input-independent
    /// (set size, recorded once when data-flow hints are armed).
    pub branches_proven_independent: u64,
    /// Flip candidates skipped because their branch site is statically
    /// input-independent (no solver call issued).
    pub independent_skips: u32,
    /// Flip candidates whose dynamic condition variables were checked
    /// against the static backward slice's source mask.
    pub static_slice_checked: u64,
    /// Checked candidates whose dynamic cone of influence stayed within
    /// the static slice's sources (agreement).
    pub static_slice_agreement: u64,
    /// Pinned jumps proven exact by static `jr` resolution (singleton
    /// target set — pinning lost no paths).
    pub exact_pins: u32,
    /// Total solver queries issued.
    pub queries: u32,
    /// Satisfiable queries.
    pub sat_queries: u32,
    /// Concrete rounds executed.
    pub rounds: u32,
    /// Queries answered from the solver's cross-round cache without
    /// touching the SAT core (exact + model-reuse + unsat-subset hits).
    pub cache_hits: u64,
    /// Queries that missed every cache layer and were solved from scratch.
    pub cache_misses: u64,
    /// Cache hits answered by replaying an identical constraint set.
    pub cache_exact_hits: u64,
    /// Cache hits answered by re-validating a previously found model.
    pub cache_model_hits: u64,
    /// Cache hits answered by unsat-core subset subsumption.
    pub cache_unsat_hits: u64,
    /// Constraint roots bit-blasted into fresh CNF.
    pub roots_blasted: u64,
    /// Constraint roots reused from the incremental blasting session.
    pub roots_reused: u64,
    /// Wall-clock nanoseconds in concrete execution (VM) per attempt.
    pub vm_ns: u64,
    /// Wall-clock nanoseconds in taint analysis per attempt.
    pub taint_ns: u64,
    /// Wall-clock nanoseconds in symbolic replay per attempt.
    pub symex_ns: u64,
    /// Wall-clock nanoseconds in solver queries per attempt.
    pub solver_ns: u64,
    /// Rewrite-simplifier memo hits across all queries (optimizer stage 1).
    pub simplify_hits: u64,
    /// Constraints dropped as tautologies or folded to constants by the
    /// optimizer (stages 1 and 2), across all queries.
    pub terms_pruned: u64,
    /// Total variable-connected slices queries were split into (stage 3);
    /// equals `queries` when every query was a single component.
    pub slices: u64,
    /// Cache-missed slices answered by interval-witness synthesis instead
    /// of the CDCL solver (stage 3½), across all queries.
    pub witness_hits: u64,
    /// Wall-clock nanoseconds in the rewrite simplifier across all queries.
    pub simplify_ns: u64,
    /// Wall-clock nanoseconds in interval pruning across all queries.
    pub interval_ns: u64,
    /// Wall-clock nanoseconds in cone-of-influence slicing across all
    /// queries.
    pub slice_ns: u64,
    /// Total VM instruction steps across all concrete rounds.
    pub vm_steps: u64,
    /// VM steps served from the predecoded basic-block cache.
    pub bb_hits: u64,
    /// VM dispatch steps the block cache could not serve (cold, dirty, or
    /// uncacheable pc).
    pub bb_misses: u64,
    /// Cached blocks invalidated by stores into decoded code ranges.
    pub bb_invalidations: u64,
    /// VM steps that byte-decoded an instruction (cache misses plus all
    /// steps when the cache is disabled).
    pub steps_decoded: u64,
    /// SAT watch-list entries dismissed by a true blocker literal across
    /// all queries (propagation fast path).
    pub blocker_skips: u64,
    /// SAT learnt clauses evicted by LBD-scored reduction across all
    /// queries.
    pub lbd_evictions: u64,
    /// Faults fired by an armed chaos plan during this attempt (0 unless
    /// the study runner armed a [`bomblab_fault::FaultPlan`]).
    pub injected_faults: u32,
    /// Human-readable record of each injected fault, in firing order.
    pub fault_log: Vec<String>,
    /// Structured diagnostic when the attempt was ended by a contained
    /// crash (machine failure, panic, or deadline).
    pub crash: Option<CrashDiag>,
    /// Extra attempts the study's retry loop spent on this cell before
    /// this (final) attempt. Set by the study runner, not the engine.
    pub retries: u32,
    /// The study quarantined this cell: two attempts died with the same
    /// deterministic panic, so further retries were pointless. Set by the
    /// study runner.
    pub quarantined: bool,
    /// Total scheduled retry backoff in nanoseconds (deterministic values
    /// from the escalation schedule, not measured sleep). Set by the study
    /// runner.
    pub retry_backoff_ns: u64,
    /// Crash messages of the failed attempts that preceded this one, in
    /// order. Trace/bench material only — never rendered into reports.
    pub retry_log: Vec<String>,
    /// Cache-missed slices answered from the persistent solver cache
    /// (verified read-through hits), when a cache directory is armed.
    pub disk_cache_hits: u64,
    /// Persistent-cache segments rejected at load for corruption,
    /// truncation, or version mismatch (then rebuilt on flush).
    pub cache_segments_rejected: u64,
    /// Total CDCL propagations across all queries (denominator for the
    /// `blocker_skips` sanity bound — skips happen inside watch-list
    /// walks, which propagations drive).
    pub propagations: u64,
    /// Cache-missed slices answered from the study-wide shared in-process
    /// solver cache (verified read-through hits), when one is armed.
    pub shared_cache_hits: u64,
    /// Slice models this cell stored into the shared in-process cache.
    pub shared_cache_stores: u64,
    /// Shared-cache models rejected by read-through verification (stale or
    /// corrupt entries; counted, never answered from).
    pub shared_cache_rejected: u64,
    /// Trace steps recorded with full operand capture, summed over rounds.
    pub trace_steps_full: u64,
    /// Trace steps recorded as elided skeletons by the VM's taint gate
    /// (zero unless the profile arms `sparse_trace`).
    pub trace_steps_elided: u64,
    /// Bytes held by the trace arenas, summed over rounds (capacity, not
    /// length — the allocation footprint recording actually paid).
    pub trace_arena_bytes: u64,
}

/// Structured diagnostic for a contained per-cell failure: what the cell
/// died of, where in the pipeline, and how long it had been running.
///
/// Only `message` and `stage` appear in reports — `elapsed_ns` is real
/// wall clock and would break byte-identical output across `--jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashDiag {
    /// The panic payload or machine error, as text.
    pub message: String,
    /// The pipeline stage the cell had reached ("vm", "taint", "lift",
    /// "symex", "solve", or "start").
    pub stage: String,
    /// Wall-clock nanoseconds from cell start to the failure.
    pub elapsed_ns: u64,
}

/// Result of one engine run against a subject.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The study label.
    pub outcome: Outcome,
    /// The detonating input, when solved.
    pub solved_input: Option<WorldInput>,
    /// Collected evidence (for reports and tests).
    pub evidence: Evidence,
}

/// Ground-truth facts about a bomb, derived from its known trigger input.
/// Used only to *attribute* failures (the paper's root-cause analysis);
/// success always comes from actually detonating the bomb.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// The solution path crosses a hardware trap.
    pub trap_edge: bool,
    /// The trigger requires controlling `time`.
    pub needs_time: bool,
    /// The trigger requires controlling the network response.
    pub needs_net: bool,
    /// The trigger requires controlling `getuid`.
    pub needs_uid: bool,
    /// The flow passes through files (or kernel file positions).
    pub covert_files: bool,
    /// The flow passes through pipes.
    pub covert_pipes: bool,
    /// The flow passes through spawned threads.
    pub covert_threads: bool,
    /// The flow passes through forked processes.
    pub covert_forks: bool,
    /// Maximum symbolic-load indirection depth on the solution path.
    pub max_indirection: u32,
    /// Depth of the symbolic jump target, if the path takes one.
    pub sym_jump_lvl: Option<u32>,
    /// The path constraints involve floating point.
    pub has_float: bool,
    /// Symbolic values act as syscall arguments/numbers (contextual).
    pub ctx: bool,
    /// Tainted flow passes through shared-library code.
    pub through_lib: bool,
}

/// Computes ground truth by running the trigger input omnisciently.
pub fn ground_truth(subject: &Subject, trigger: &WorldInput) -> GroundTruth {
    let mut gt = GroundTruth {
        needs_time: trigger.epoch != subject.seed.epoch,
        needs_net: trigger.net != subject.seed.net,
        needs_uid: trigger.uid != subject.seed.uid,
        ..GroundTruth::default()
    };
    let config = trigger.to_config(true, 4_000_000);
    let Ok(mut machine) = Machine::load(&subject.image, subject.lib.as_ref(), config) else {
        return gt;
    };
    let snapshot = machine
        .process_memory(ROOT_PID)
        .expect("root exists")
        .clone();
    machine.run();
    let trace = machine.take_trace();
    gt.trap_edge = trace.iter().any(|s| s.trap.is_some());

    let lib_ranges = subject
        .lib
        .as_ref()
        .map(|l| {
            vec![
                (l.text_base, l.text.len() as u64),
                (l.data_base, l.data.len() as u64),
            ]
        })
        .unwrap_or_default();

    // Omniscient taint over the solution trace.
    let omni = TaintPolicy::omniscient();
    let run_taint = |policy: TaintPolicy| {
        let mut engine = TaintEngine::new(policy);
        engine.taint_memory(
            ROOT_PID,
            &[(subject.argv1_addr(), trigger.argv1.len() as u64)],
        );
        engine.run(&trace)
    };
    let full = run_taint(omni);
    gt.ctx = !full.tainted_sys_args.is_empty() || !full.tainted_sys_nums.is_empty();
    gt.through_lib = full.tainted_steps.iter().any(|&i| {
        let pc = trace.pc_at(i);
        lib_ranges
            .iter()
            .any(|&(base, len)| pc >= base && pc < base + len)
    });

    // Ablations: a propagation path is load-bearing when disabling it
    // loses at least one tainted branch (argv-parsing branches survive any
    // ablation, so compare counts, not emptiness).
    let branch_count = |policy: TaintPolicy| run_taint(policy).tainted_branches.len();
    let full_count = full.tainted_branches.len();
    if full_count > 0 {
        gt.covert_files = branch_count(TaintPolicy {
            through_files: false,
            ..omni
        }) < full_count;
        gt.covert_pipes = branch_count(TaintPolicy {
            through_pipes: false,
            ..omni
        }) < full_count;
        gt.covert_threads = branch_count(TaintPolicy {
            across_threads: false,
            ..omni
        }) < full_count;
        gt.covert_forks = branch_count(TaintPolicy {
            across_processes: false,
            ..omni
        }) < full_count;
    }

    // Omniscient symbolic replay for indirection depth, jumps, floats.
    let mut sx = SymExec::new(
        bomblab_symex::MemoryModel::SymbolicMap {
            max_indirection: 16,
            region: 256,
        },
        bomblab_symex::PropagationPolicy::full(),
    )
    .with_env(SymbolizeEnv {
        time: true,
        net: true,
        stdin: true,
        unconstrained_sys_returns: false,
    });
    sx.set_initial_memory(ROOT_PID, snapshot);
    sx.symbolize_bytes(
        ROOT_PID,
        subject.argv1_addr(),
        trigger.argv1.len() as u64,
        "arg1",
    );
    let sym = sx.run(&trace);
    gt.max_indirection = sym.events.max_load_level;
    gt.sym_jump_lvl = sym.events.pinned_jumps.iter().map(|&(_, l)| l).max();
    gt.has_float = sym.has_float();
    gt
}

/// The concolic engine.
#[derive(Debug, Clone)]
pub struct Engine {
    profile: ToolProfile,
    hints: StaticHints,
    cache_dir: Option<std::path::PathBuf>,
    shared_cache: Option<std::sync::Arc<ShardCache>>,
}

impl Engine {
    /// Creates an engine with the given tool profile.
    pub fn new(profile: ToolProfile) -> Engine {
        Engine {
            profile,
            hints: StaticHints::default(),
            cache_dir: None,
            shared_cache: None,
        }
    }

    /// Installs statically proven facts used to prune symbolic work.
    #[must_use]
    pub fn with_static_hints(mut self, hints: StaticHints) -> Engine {
        self.hints = hints;
        self
    }

    /// Arms the persistent solver cache rooted at `dir`. Profiles with
    /// `incremental_solver` read through it (every loaded model is
    /// re-verified by concrete evaluation); stateless paper-tool profiles
    /// attach write-only, warming the cache for later runs without any
    /// observable effect on their own verdicts — Table II is byte-identical
    /// with the cache armed or not.
    #[must_use]
    pub fn with_solver_cache_dir(mut self, dir: Option<std::path::PathBuf>) -> Engine {
        self.cache_dir = dir;
        self
    }

    /// Arms the study-wide shared in-process solver cache. The gating
    /// discipline mirrors [`with_solver_cache_dir`](Engine::with_solver_cache_dir):
    /// profiles with `incremental_solver` read through it (every loaded
    /// model re-verified by concrete evaluation), stateless paper-tool
    /// profiles attach write-only — warming the cache for sibling cells
    /// without any observable effect on their own verdicts.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Option<std::sync::Arc<ShardCache>>) -> Engine {
        self.shared_cache = cache;
        self
    }

    /// The profile.
    pub fn profile(&self) -> &ToolProfile {
        &self.profile
    }

    /// Explores a subject: the concrete/symbolic loop of the paper's
    /// Figure 1, ending in detonation or an evidence-based failure label.
    pub fn explore(&self, subject: &Subject, ground: &GroundTruth) -> Attempt {
        let mut evidence = Evidence::default();
        let mut solved: Option<WorldInput> = None;
        if self.hints.dataflow_armed {
            evidence.branches_proven_independent = self.hints.independent_branches.len() as u64;
        }

        let lib_ranges: Vec<(u64, u64)> = subject
            .lib
            .as_ref()
            .map(|l| {
                vec![
                    (l.text_base, l.text.len() as u64),
                    (l.data_base, l.data.len() as u64),
                ]
            })
            .unwrap_or_default();

        let mut queue: VecDeque<WorldInput> = VecDeque::new();
        queue.push_back(subject.seed.clone());
        let mut seen_inputs: HashSet<WorldInput> = HashSet::new();
        seen_inputs.insert(subject.seed.clone());
        // A flip is identified by its *path context*: the hash of the
        // (pc, direction) sequence of all earlier symbolic branches, plus
        // the branch's own pc and the flipped direction. Identical keys
        // mean identical queries, so each is solved at most once; the same
        // branch under a longer prefix (e.g. the final compare of a
        // multi-digit atoi) is a fresh key and gets its own query.
        let mut visited_flips: HashSet<(u64, u64, bool)> = HashSet::new();

        // Persistent solver cache, shared by every solver of this attempt.
        // Opening tolerates (and counts) corrupt segments; an unopenable
        // directory simply runs the attempt cold — durability features are
        // best-effort, never a new way for a cell to die.
        let disk = self.cache_dir.as_ref().and_then(|dir| {
            DiskCache::open(dir)
                .ok()
                .map(|c| std::rc::Rc::new(std::cell::RefCell::new(c)))
        });

        // One solver for the whole attempt: its incremental blasting
        // session, query cache and learnt clauses persist across rounds,
        // so later rounds extend earlier CNF instead of re-emitting it.
        let mut solver = Solver::new()
            .with_budget(self.profile.solver_budget)
            .with_float_mode(self.profile.float_mode);
        if let Some(d) = &disk {
            solver = solver.with_disk_cache(d.clone(), self.profile.incremental_solver);
        }
        if let Some(shared) = &self.shared_cache {
            solver = solver.with_shared_cache(shared.clone(), self.profile.incremental_solver);
        }
        let solver = solver;

        'rounds: while let Some(input) = queue.pop_front() {
            // Containment watchdog plus the engine-round fault point: one
            // hit per concrete round. Both are inert (one relaxed atomic
            // load each) unless the study runner armed a chaos plan.
            fault::check_deadline();
            if let Some(action) = fault::fault_point(fault::FaultSite::EngineRound) {
                match action {
                    fault::FaultAction::Stall => {
                        fault::trip_stall();
                        fault::check_deadline();
                    }
                    _ => panic!("injected panic in the engine round loop"),
                }
            }
            if evidence.rounds >= self.profile.max_rounds {
                break;
            }
            evidence.rounds += 1;
            obs::set_round(evidence.rounds);

            // 1. Concrete execution with tracing.
            fault::set_stage("vm");
            let mut config = input.to_config(true, self.profile.step_budget);
            // Taint-gated sparse recording: seed the VM's online gate
            // with the same symbolic ranges the taint engine uses. The
            // environment override forces elision for every compatible
            // profile (CI uses it to prove the reports don't depend on
            // operand capture). A profile that treats library code as
            // opaque is *not* compatible: its symbolic executor mines
            // concrete call-argument values out of clean steps to feed
            // function summaries, and an elided step hides exactly that
            // data — so elision stays off whenever opaque ranges exist.
            let opaque_libs = !self.profile.loads_dyn_libs && !lib_ranges.is_empty();
            if (self.profile.sparse_trace || std::env::var_os("BOMBLAB_SPARSE_TRACE").is_some())
                && !opaque_libs
            {
                config.sparse_taint = Some(vec![(subject.argv1_addr(), input.argv1.len() as u64)]);
            }
            let Ok(mut machine) = Machine::load(&subject.image, subject.lib.as_ref(), config)
            else {
                evidence.abnormal = true;
                break;
            };
            let snapshot = machine
                .process_memory(ROOT_PID)
                .expect("root exists")
                .clone();
            let vm_start = std::time::Instant::now();
            let run = machine.run();
            let status = run.status;
            evidence.vm_ns += vm_start.elapsed().as_nanos() as u64;
            evidence.vm_steps += run.steps;
            let bb = machine.bb_stats();
            evidence.bb_hits += bb.bb_hits;
            evidence.bb_misses += bb.bb_misses;
            evidence.bb_invalidations += bb.bb_invalidations;
            evidence.steps_decoded += bb.steps_decoded;
            // An injected stall may have tripped on the guest's final
            // quantum; fail the cell before the detonation check so the
            // "hang" cannot race the solve.
            fault::check_deadline();
            if let RunStatus::Crashed(e) = status {
                // The emulator itself failed (injected fault or broken
                // invariant): the tool is dead, not the guest.
                evidence.abnormal = true;
                evidence.crash = Some(CrashDiag {
                    message: e.to_string(),
                    stage: "vm".to_string(),
                    elapsed_ns: 0,
                });
                break;
            }
            if status.exit_code() == Some(BOOM_EXIT_CODE) {
                solved = Some(input);
                break;
            }
            if status == RunStatus::OutOfBudget {
                evidence.vm_budget = true;
            }
            let full_trace = machine.take_trace();
            evidence.trace_steps_full += full_trace.full_steps();
            evidence.trace_steps_elided += full_trace.elided_steps();
            evidence.trace_arena_bytes += full_trace.arena_bytes();

            // 2. Tool-level aborts: unsupported syscalls, traps.
            if full_trace.iter().any(|s| {
                s.sys
                    .as_ref()
                    .is_some_and(|r| self.profile.unsupported_syscalls.contains(&r.num))
            }) {
                evidence.abnormal = true;
                break;
            }
            let trapped = full_trace.iter().any(|s| s.trap.is_some());
            if trapped {
                match self.profile.trap_support {
                    TrapSupport::Follow | TrapSupport::Skip => {}
                    TrapSupport::MissingLift => {
                        evidence.lift_failure = true;
                        break;
                    }
                    TrapSupport::Crash => {
                        evidence.abnormal = true;
                        break;
                    }
                }
            }

            // 3. Visibility filtering (threads, forks, opaque libraries).
            let visible = self.filter_trace(&full_trace);
            let taint_view = if self.profile.loads_dyn_libs {
                visible.clone()
            } else {
                visible.filter(|s| !lib_ranges.iter().any(|&(b, l)| s.pc >= b && s.pc < b + l))
            };

            // 4. Taint analysis.
            fault::set_stage("taint");
            let mut taint = TaintEngine::new(self.profile.taint_policy)
                .with_trap_clearing(self.profile.trap_support == TrapSupport::Skip);
            if self.profile.taint_policy.sources.argv {
                taint.taint_memory(
                    ROOT_PID,
                    &[(subject.argv1_addr(), input.argv1.len() as u64)],
                );
            }
            let taint_start = std::time::Instant::now();
            let report = taint.run(&taint_view);
            evidence.taint_ns += taint_start.elapsed().as_nanos() as u64;
            evidence.saw_tainted_branches |= report.any_symbolic_control();
            evidence.taint_losses |= !report.losses.is_empty();
            evidence.ctx_events |=
                !report.tainted_sys_args.is_empty() || !report.tainted_sys_nums.is_empty();

            // 5. Lifting check on the tainted slice (Es1).
            fault::set_stage("lift");
            let lift_timer = obs::start();
            let mut lift_failed = false;
            for &idx in &report.tainted_steps {
                let step = taint_view.view(idx);
                if step.sys.is_some() {
                    continue;
                }
                if lift(&step.insn, step.pc, &self.profile.support).is_err() {
                    evidence.lift_failure = true;
                    lift_failed = true;
                    break;
                }
            }
            if let Some(t0) = lift_timer {
                obs::span_ns("lift.check", t0.elapsed().as_nanos() as u64);
            }
            if lift_failed {
                // A real tool emits corrupt constraints from here on; we
                // stop exploring this trace.
                continue 'rounds;
            }

            // 6. Symbolic replay.
            fault::set_stage("symex");
            let mut sx = SymExec::new(self.profile.memory_model, self.profile.sym_policy)
                .with_env(SymbolizeEnv {
                    time: self.profile.taint_policy.sources.time,
                    net: self.profile.taint_policy.sources.net,
                    stdin: self.profile.taint_policy.sources.stdin,
                    unconstrained_sys_returns: self.profile.unconstrained_sys_returns,
                })
                .with_trap_clearing(self.profile.trap_support == TrapSupport::Skip)
                .with_trap_guards(self.profile.trap_support == TrapSupport::Follow);
            sx.set_initial_memory(ROOT_PID, snapshot);
            if self.profile.taint_policy.sources.argv {
                sx.symbolize_bytes(
                    ROOT_PID,
                    subject.argv1_addr(),
                    input.argv1.len() as u64,
                    "arg1",
                );
            }
            if !self.profile.loads_dyn_libs {
                sx.set_opaque_ranges(lib_ranges.clone(), self.profile.opaque_fresh_returns);
                // Known libc routines get symbolic summaries (SimProcedures).
                if let Some(lib) = &subject.lib {
                    if let Some(addr) = lib.symbol("atoi") {
                        sx.add_summary(addr, bomblab_symex::Summary::Atoi);
                    }
                    if let Some(addr) = lib.symbol("strlen") {
                        sx.add_summary(addr, bomblab_symex::Summary::Strlen);
                    }
                }
            }
            let symex_start = std::time::Instant::now();
            let sym = sx.run(&visible);
            evidence.symex_ns += symex_start.elapsed().as_nanos() as u64;
            evidence.concretization |=
                !sym.events.concretized_loads.is_empty() || !sym.events.over_indirection.is_empty();
            for &(idx, lvl) in &sym.events.pinned_jumps {
                let site_pc = visible.pc_at(idx);
                let exact = self
                    .hints
                    .jr_targets
                    .get(&site_pc)
                    .is_some_and(|targets| targets.len() == 1);
                if exact {
                    evidence.exact_pins += 1;
                } else {
                    evidence.pinned_jump_lvl =
                        Some(evidence.pinned_jump_lvl.map_or(lvl, |old| old.max(lvl)));
                }
            }
            evidence.dropped_sym_flows |= !sym.events.dropped_file_flows.is_empty()
                || !sym.events.dropped_pipe_flows.is_empty()
                || !sym.events.dropped_thread_flows.is_empty()
                || !sym.events.dropped_fork_flows.is_empty();
            evidence.ctx_events |=
                !sym.events.sym_sys_args.is_empty() || !sym.events.sym_sys_nums.is_empty();

            // 7. Flip each unexplored branch and schedule the solutions.
            //
            // Candidates are collected in path order (the prefix hash
            // that keys the visited set is inherently sequential), then
            // processed by static flip priority. With data-flow hints
            // unarmed every priority is 0 and the index tie-break keeps
            // the exact historical path order — byte-identical traces
            // for the paper-tool profiles.
            fault::set_stage("solve");
            use std::hash::{Hash, Hasher};
            let mut prefix = std::collections::hash_map::DefaultHasher::new();
            let mut candidates: Vec<(i64, usize, (u64, u64, bool))> = Vec::new();
            for i in 0..sym.path.len() {
                let pc = &sym.path[i];
                let key = (prefix.finish(), pc.pc, !pc.taken);
                (pc.pc, pc.taken).hash(&mut prefix);
                let prio = if self.hints.dataflow_armed {
                    self.hints.flip_priority.get(&pc.pc).copied().unwrap_or(0)
                } else {
                    0
                };
                candidates.push((prio, i, key));
            }
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for (_prio, i, key) in candidates {
                let pc = &sym.path[i];
                if !visited_flips.insert(key) {
                    continue;
                }
                if self.hints.infeasible_edges.contains(&(pc.pc, !pc.taken)) {
                    evidence.pruned_flips += 1;
                    continue;
                }
                if self.hints.dataflow_armed {
                    // Cross-check the dynamic cone of influence against
                    // the static backward slice's source classification.
                    let static_mask = self.hints.branch_sources.get(&pc.pc).copied().or(
                        if self.hints.independent_branches.contains(&pc.pc) {
                            Some(0)
                        } else {
                            None
                        },
                    );
                    if let Some(sm) = static_mask {
                        evidence.static_slice_checked += 1;
                        if source_class(dyn_source_mask(pc)) & !source_class(sm) == 0 {
                            evidence.static_slice_agreement += 1;
                        }
                    }
                    if self.hints.independent_branches.contains(&pc.pc) {
                        // Statically proven input-independent: flipping
                        // cannot move input-dependent control flow, so
                        // the solver call is skipped outright.
                        evidence.independent_skips += 1;
                        continue;
                    }
                }
                let mut query = sym.flip_query(i);
                if self.profile.argv_model == ArgvModel::FixedNonZero {
                    for b in 0..input.argv1.len() {
                        let var = Term::var(format!("arg1_b{b}"), 8);
                        query.push(Term::not(&Term::cmp(CmpOp::Eq, &var, &Term::bv(0, 8))));
                    }
                }
                evidence.queries += 1;
                let solve_start = std::time::Instant::now();
                // Stateless profiles get a throwaway solver per query:
                // no learnt clauses, no cached models, no incremental
                // blasting — each query pays its full cost against the
                // budget, the way the 2017-era tools did. The throwaway
                // stays alive past `try_check` so its per-query optimizer
                // statistics can be folded into the evidence.
                let throwaway;
                let active = if self.profile.incremental_solver {
                    &solver
                } else {
                    let mut t = Solver::new()
                        .with_budget(self.profile.solver_budget)
                        .with_float_mode(self.profile.float_mode);
                    if let Some(d) = &disk {
                        // Write-only: the throwaway warms the persistent
                        // cache but never reads it, preserving the
                        // stateless profile's per-query cost model.
                        t = t.with_disk_cache(d.clone(), false);
                    }
                    if let Some(shared) = &self.shared_cache {
                        // Same write-only discipline for the shared
                        // in-process cache.
                        t = t.with_shared_cache(shared.clone(), false);
                    }
                    throwaway = t;
                    &throwaway
                };
                let result = active.try_check(&query);
                evidence.solver_ns += solve_start.elapsed().as_nanos() as u64;
                let qstats = active.stats();
                evidence.simplify_hits += qstats.simplify_hits;
                evidence.terms_pruned += qstats.terms_pruned;
                evidence.slices += qstats.slices;
                evidence.witness_hits += qstats.witness_hits;
                evidence.simplify_ns += qstats.simplify_ns;
                evidence.interval_ns += qstats.interval_ns;
                evidence.slice_ns += qstats.slice_ns;
                evidence.blocker_skips += qstats.blocker_skips;
                evidence.lbd_evictions += qstats.lbd_evictions;
                evidence.propagations += qstats.propagations;
                evidence.shared_cache_hits += qstats.shared_cache_hits;
                evidence.shared_cache_stores += qstats.shared_cache_stores;
                evidence.shared_cache_rejected += qstats.shared_cache_rejected;
                let outcome = match result {
                    Ok(out) => out,
                    Err(e) => {
                        // An internal solver invariant broke: the tool is
                        // dead. Contain it as an abnormal cell with a
                        // stage-attributed diagnostic instead of panicking.
                        evidence.abnormal = true;
                        evidence.crash = Some(CrashDiag {
                            message: e.to_string(),
                            stage: "solve".to_string(),
                            elapsed_ns: 0,
                        });
                        break 'rounds;
                    }
                };
                match outcome {
                    SolveOutcome::Sat(model) => {
                        evidence.sat_queries += 1;
                        if model.iter().any(|(n, _)| n.starts_with("sysret_")) {
                            evidence.sim_query_sysret = true;
                        }
                        if model.iter().any(|(n, _)| n.starts_with("libret")) {
                            evidence.sim_query_libret = true;
                        }
                        let next = input.apply_model(&model);
                        if seen_inputs.insert(next.clone()) && queue.len() < 64 {
                            queue.push_back(next);
                        }
                    }
                    SolveOutcome::Unsat => {}
                    SolveOutcome::Unknown(
                        UnknownReason::ConflictBudget
                        | UnknownReason::FormulaTooLarge
                        | UnknownReason::FaultInjected,
                    ) => {
                        evidence.solver_budget = true;
                    }
                    SolveOutcome::Unknown(
                        UnknownReason::FloatUnsupported | UnknownReason::FloatSearchFailed,
                    ) => {
                        evidence.float_unsupported = true;
                    }
                    // Unreachable through `try_check` (internal errors
                    // surface as `Err` above), kept for exhaustiveness.
                    SolveOutcome::Unknown(UnknownReason::Internal) => {
                        evidence.abnormal = true;
                    }
                }
                if evidence.solver_budget {
                    break;
                }
            }
            if evidence.solver_budget {
                // The paper's budget is a *total* timeout: once the solver
                // has been exhausted the tool's run is over.
                break 'rounds;
            }
        }

        if let Some(d) = &disk {
            // Best-effort publish: a failed flush costs warmth, not the
            // cell — the in-memory outcome is already decided.
            let _ = d.borrow_mut().flush();
            let dc = d.borrow();
            evidence.disk_cache_hits = dc.hits();
            evidence.cache_segments_rejected = dc.segments_rejected();
        }

        let cache = solver.cache_stats();
        evidence.cache_hits = cache.hits();
        evidence.cache_misses = cache.misses;
        evidence.cache_exact_hits = cache.exact_hits;
        evidence.cache_model_hits = cache.model_hits;
        evidence.cache_unsat_hits = cache.unsat_subset_hits;
        evidence.roots_blasted = cache.roots_blasted;
        evidence.roots_reused = cache.roots_reused;

        // Mirror the attempt-level evidence into the trace sink. The split
        // cache counters and root reuse live only on the shared solver, so
        // the per-query instrumentation cannot see them.
        if obs::armed() {
            obs::counter("engine.rounds", u64::from(evidence.rounds));
            obs::counter("engine.queries", u64::from(evidence.queries));
            obs::counter("engine.sat_queries", u64::from(evidence.sat_queries));
            obs::counter("engine.pruned_flips", u64::from(evidence.pruned_flips));
            obs::counter("engine.exact_pins", u64::from(evidence.exact_pins));
            obs::counter("solver.cache_exact_hits", evidence.cache_exact_hits);
            obs::counter("solver.cache_model_hits", evidence.cache_model_hits);
            obs::counter("solver.cache_unsat_hits", evidence.cache_unsat_hits);
            obs::counter("solver.roots_blasted", evidence.roots_blasted);
            obs::counter("solver.roots_reused", evidence.roots_reused);
            obs::counter("engine.vm_steps", evidence.vm_steps);
            obs::counter("vm.trace_steps_full", evidence.trace_steps_full);
            obs::counter("vm.trace_steps_elided", evidence.trace_steps_elided);
            obs::counter("vm.trace_arena_bytes", evidence.trace_arena_bytes);
        }

        // Injected faults corrupt the attempt wholesale: even a run that
        // stumbled onto the trigger is not a trustworthy solve once the
        // chaos layer has interfered, so any injection (or contained
        // machine crash) forces the paper's `E` label. Unarmed runs have
        // `injected_faults == 0` and are untouched by this rule.
        evidence.injected_faults = fault::injected_count();
        if evidence.crash.is_some() || evidence.injected_faults > 0 {
            evidence.abnormal = true;
            return Attempt {
                outcome: Outcome::Abnormal,
                solved_input: None,
                evidence,
            };
        }
        let outcome = match solved {
            Some(_) => Outcome::Solved,
            None => self.diagnose(&evidence, ground),
        };
        Attempt {
            outcome,
            solved_input: solved,
            evidence,
        }
    }

    /// Filters the trace down to what the tool can observe.
    fn filter_trace(&self, trace: &Trace) -> Trace {
        let mut first_tid: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        trace.filter(|s| {
            if !self.profile.follows_forks && s.pid != ROOT_PID {
                return false;
            }
            let first = *first_tid.entry(s.pid).or_insert(s.tid);
            if !self.profile.follows_threads && s.tid != first {
                return false;
            }
            true
        })
    }

    /// Maps evidence + ground truth to the paper's outcome label. Mirrors
    /// the root-cause analysis of Section V.C.
    fn diagnose(&self, ev: &Evidence, gt: &GroundTruth) -> Outcome {
        let p = &self.profile;
        let model_max_indirection = match p.memory_model {
            bomblab_symex::MemoryModel::Concretize => 0,
            bomblab_symex::MemoryModel::SymbolicMap {
                max_indirection, ..
            } => max_indirection,
        };
        // Deep table-driven pointer chains (crypto S-boxes) collapse the
        // data flow during concretization — the constraint model is wrong
        // *before* any solving happens, so this outranks resource
        // exhaustion (the paper labels the AES row Es2, not E).
        if gt.max_indirection >= 3 && gt.max_indirection > model_max_indirection {
            return Outcome::Es2;
        }
        // Abnormal exits and resource exhaustion come next (`E`).
        if ev.abnormal || ev.vm_budget || ev.solver_budget {
            return Outcome::Abnormal;
        }
        // Tracing / lifting failures (`Es1`).
        if ev.lift_failure {
            return Outcome::Es1;
        }
        if gt.trap_edge {
            match p.trap_support {
                TrapSupport::MissingLift => return Outcome::Es1,
                TrapSupport::Crash => return Outcome::Abnormal,
                TrapSupport::Skip => return Outcome::Es2,
                TrapSupport::Follow => {}
            }
        }
        // Missing symbolic sources (`Es0`), unless simulation "handled" the
        // environment and generated insufficient values (`P`).
        let missing_source = (gt.needs_time && !p.taint_policy.sources.time)
            || (gt.needs_net && !p.taint_policy.sources.net)
            || (gt.needs_uid && !p.taint_policy.sources.sys_returns);
        if missing_source {
            return if ev.sim_query_sysret {
                Outcome::Partial
            } else {
                Outcome::Es0
            };
        }
        // Floating point without a float-capable solver (`Es3`). When the
        // float code lives in an unloaded library the tool never even sees
        // it; that is a propagation failure handled below.
        let float_visible = p.loads_dyn_libs || !gt.through_lib;
        if ev.float_unsupported
            || (gt.has_float && p.float_mode == bomblab_solver::FloatMode::Reject && float_visible)
        {
            return Outcome::Es3;
        }
        // Simulation generated values the world cannot honour: syscall
        // simulation is the paper's `P`; aggressive library summaries are
        // wrong-value propagation (`Es2`).
        if ev.sim_query_sysret {
            return Outcome::Partial;
        }
        if ev.sim_query_libret {
            return Outcome::Es2;
        }
        // Covert flows the profile does not track (`Es2`).
        let covert_lost = (gt.covert_files && !p.sym_policy.through_files)
            || (gt.covert_pipes && !p.sym_policy.through_pipes)
            || (gt.covert_threads && !(p.sym_policy.across_threads && p.follows_threads))
            || (gt.covert_forks && !(p.sym_policy.across_processes && p.follows_forks));
        if covert_lost {
            return Outcome::Es2;
        }
        // Contextual symbolic values: modeling vs propagation, per style.
        if gt.ctx || ev.ctx_events {
            return if p.models_env_as_constraints {
                Outcome::Es3
            } else {
                Outcome::Es2
            };
        }
        // Symbolic memory indirection: shallow chains are a modeling gap
        // (`Es3`); the deep-chain case returned `Es2` above.
        if gt.max_indirection > model_max_indirection {
            return Outcome::Es3;
        }
        // Symbolic jumps.
        if let Some(lvl) = gt.sym_jump_lvl.or(ev.pinned_jump_lvl) {
            return if lvl >= 1 {
                Outcome::Es3
            } else {
                match p.style {
                    EngineStyle::Trace => Outcome::Es3,
                    EngineStyle::Emulation => Outcome::Es2,
                }
            };
        }
        // Library flows invisible to a no-libs analysis.
        if gt.through_lib && !p.loads_dyn_libs {
            return Outcome::Es2;
        }
        // Leftover propagation evidence.
        if ev.dropped_sym_flows || ev.taint_losses {
            return Outcome::Es2;
        }
        if ev.concretization {
            return Outcome::Es3;
        }
        // Saw nothing (or nothing useful): a declaration-level failure.
        Outcome::Es0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    fn diagnose_with(profile: ToolProfile, ev: Evidence, gt: GroundTruth) -> Outcome {
        Engine::new(profile).diagnose(&ev, &gt)
    }

    #[test]
    fn resource_exhaustion_maps_to_abnormal() {
        let ev = Evidence {
            solver_budget: true,
            ..Evidence::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::bap(), ev, GroundTruth::default()),
            Outcome::Abnormal
        );
    }

    #[test]
    fn deep_indirection_outranks_resource_exhaustion() {
        // The AES shape: budget blown *and* ≥3-deep pointer chains.
        let ev = Evidence {
            solver_budget: true,
            ..Evidence::default()
        };
        let gt = GroundTruth {
            max_indirection: 4,
            ..GroundTruth::default()
        };
        assert_eq!(diagnose_with(ToolProfile::bap(), ev, gt), Outcome::Es2);
    }

    #[test]
    fn lift_failure_maps_to_es1() {
        let ev = Evidence {
            lift_failure: true,
            ..Evidence::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::triton(), ev, GroundTruth::default()),
            Outcome::Es1
        );
    }

    #[test]
    fn trap_edges_split_by_trap_support() {
        let gt = GroundTruth {
            trap_edge: true,
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::triton(), Evidence::default(), gt.clone()),
            Outcome::Es1
        );
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), gt.clone()),
            Outcome::Abnormal
        );
        assert_eq!(
            diagnose_with(ToolProfile::angr_nolib(), Evidence::default(), gt),
            Outcome::Es2
        );
    }

    #[test]
    fn missing_sources_split_by_simulation() {
        let gt = GroundTruth {
            needs_uid: true,
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::bap(), Evidence::default(), gt.clone()),
            Outcome::Es0
        );
        let ev = Evidence {
            sim_query_sysret: true,
            ..Evidence::default()
        };
        assert_eq!(diagnose_with(ToolProfile::angr(), ev, gt), Outcome::Partial);
    }

    #[test]
    fn covert_flows_map_to_es2() {
        let gt = GroundTruth {
            covert_pipes: true,
            covert_forks: true,
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::triton(), Evidence::default(), gt.clone()),
            Outcome::Es2
        );
        // Angr-NoLib tracks pipes and forks: the covert rule does not fire
        // and the diagnosis falls through to the declaration default.
        assert_eq!(
            diagnose_with(ToolProfile::angr_nolib(), Evidence::default(), gt),
            Outcome::Es0
        );
    }

    #[test]
    fn contextual_values_split_by_modeling_style() {
        let gt = GroundTruth {
            ctx: true,
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::triton(), Evidence::default(), gt.clone()),
            Outcome::Es3
        );
        assert_eq!(
            diagnose_with(ToolProfile::bap(), Evidence::default(), gt),
            Outcome::Es2
        );
    }

    #[test]
    fn shallow_indirection_maps_to_es3_per_memory_model() {
        let gt1 = GroundTruth {
            max_indirection: 1,
            ..GroundTruth::default()
        };
        // Concretizing tools fail level-1...
        assert_eq!(
            diagnose_with(ToolProfile::bap(), Evidence::default(), gt1.clone()),
            Outcome::Es3
        );
        // ...Angr's one-level map handles it (falls through to Es0 default
        // in the absence of any other evidence).
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), gt1),
            Outcome::Es0
        );
        let gt2 = GroundTruth {
            max_indirection: 2,
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), gt2),
            Outcome::Es3
        );
    }

    #[test]
    fn symbolic_jumps_split_by_style_and_depth() {
        let direct = GroundTruth {
            sym_jump_lvl: Some(0),
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::bap(), Evidence::default(), direct.clone()),
            Outcome::Es3
        );
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), direct),
            Outcome::Es2
        );
        let table = GroundTruth {
            sym_jump_lvl: Some(1),
            ..GroundTruth::default()
        };
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), table),
            Outcome::Es3
        );
    }

    #[test]
    fn float_visibility_depends_on_library_loading() {
        let gt = GroundTruth {
            has_float: true,
            through_lib: true,
            ..GroundTruth::default()
        };
        // With libraries loaded the float constraints are visible: Es3.
        assert_eq!(
            diagnose_with(ToolProfile::angr(), Evidence::default(), gt.clone()),
            Outcome::Es3
        );
        // Without, the whole flow is hidden in the library: Es2.
        assert_eq!(
            diagnose_with(ToolProfile::angr_nolib(), Evidence::default(), gt),
            Outcome::Es2
        );
    }
}
