//! Tool capability profiles.
//!
//! A [`ToolProfile`] is a point in the capability space the DSN'17 paper
//! implicitly explores: which instruction classes the lifter understands,
//! which inputs are declared symbolic, which covert flows the taint and
//! symbolic engines track, how symbolic memory addresses are modeled, and
//! how the environment is simulated. The four presets model the paper's
//! evaluated configurations; [`ToolProfile::omniscient`] enables every
//! mechanism and is used both as ground truth for failure diagnosis and as
//! a demonstration of what the framework itself can solve.

use bomblab_ir::SupportMatrix;
use bomblab_isa::InsnClass;
use bomblab_solver::{FloatMode, SolverBudget};
use bomblab_symex::{MemoryModel, PropagationPolicy};
use bomblab_taint::{TaintPolicy, TaintSources};

/// The solver budget used by the four paper-tool profiles: the equivalent
/// of the paper's ten-minute timeout. Crypto-grade constraints exceed it,
/// producing the `E` outcomes of Table II.
pub const PAPER_TOOL_BUDGET: SolverBudget = SolverBudget {
    max_conflicts: 5_000,
    max_formula_nodes: 2_000,
};

/// Whether a tool traces concrete runs (BAP/Triton + Pin) or emulates the
/// whole program (Angr + VEX/SimuVEX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStyle {
    /// Concrete execution + trace-based symbolic reasoning.
    Trace,
    /// Static lift + dynamic symbolic emulation.
    Emulation,
}

/// How the tool copes with hardware traps (the paper's exception bomb).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapSupport {
    /// The tracer follows the trap into the handler (Pin-style).
    Follow,
    /// The tracer cannot record the trap transition — an `Es1` tracing gap.
    MissingLift,
    /// The emulator aborts on the trap — an abnormal exit (`E`).
    Crash,
    /// The emulator skips the trap, losing the thread's symbolic state
    /// (an `Es2` propagation break).
    Skip,
}

/// How `argv` symbolization handles string length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgvModel {
    /// Bytes are free, including NUL — shorter strings are expressible
    /// (Angr's fixed-width-bits trick from the paper).
    Variable,
    /// Every seeded byte is constrained non-zero — length cannot vary.
    FixedNonZero,
}

/// A concolic tool's capability profile.
#[derive(Debug, Clone)]
pub struct ToolProfile {
    /// Display name.
    pub name: String,
    /// Trace-based or emulation-based.
    pub style: EngineStyle,
    /// Instruction classes the lifter supports (gaps → `Es1`).
    pub support: SupportMatrix,
    /// Taint policy: symbolic sources and propagation paths.
    pub taint_policy: TaintPolicy,
    /// Symbolic propagation policy (mirrors the taint policy).
    pub sym_policy: PropagationPolicy,
    /// Memory model for symbolic addresses.
    pub memory_model: MemoryModel,
    /// Floating-point solving capability.
    pub float_mode: FloatMode,
    /// `argv` length handling.
    pub argv_model: ArgvModel,
    /// Hardware-trap handling.
    pub trap_support: TrapSupport,
    /// Whether the tool observes non-root threads.
    pub follows_threads: bool,
    /// Whether the tool observes forked children.
    pub follows_forks: bool,
    /// Model environment syscall returns as unconstrained variables
    /// (Angr SimProcedures — source of `P` outcomes).
    pub unconstrained_sys_returns: bool,
    /// Analyze shared-library code (vs treating it as opaque summaries).
    pub loads_dyn_libs: bool,
    /// Opaque library calls return fresh unconstrained values (the
    /// aggressive Angr-NoLib summary behaviour).
    pub opaque_fresh_returns: bool,
    /// Syscall numbers whose mere execution aborts the tool (`E`).
    pub unsupported_syscalls: Vec<u64>,
    /// The tool models environment interactions as constraints, so
    /// contextual symbolic values fail at modeling (`Es3`) rather than
    /// propagation (`Es2`) — the paper's Triton behaviour.
    pub models_env_as_constraints: bool,
    /// Solver budget.
    pub solver_budget: SolverBudget,
    /// Whether the tool's solver keeps state (learnt clauses, cached
    /// queries, incremental blasting) across queries. The 2017-era tools
    /// invoked their solver afresh per query, so the paper presets run
    /// stateless — otherwise the framework's own caching would quietly
    /// make the emulated tools stronger than the budget calibration.
    pub incremental_solver: bool,
    /// VM step budget per concrete run.
    pub step_budget: u64,
    /// Maximum concrete rounds (test cases executed).
    pub max_rounds: u32,
    /// Arm the static data-flow layer's flip hints (independence proofs,
    /// flip priorities, slice cross-checks). Off for the paper-tool
    /// presets so Table II stays a faithful 2017-era reproduction.
    pub use_dataflow_hints: bool,
    /// Arm taint-gated sparse trace recording in the VM: operand capture
    /// is elided for steps the online taint gate proves clean. Off for the
    /// paper-tool presets — they keep full capture so Table II and the
    /// study snapshot stay byte-identical; flip decisions are unaffected
    /// either way (elided steps are exactly those the downstream engines
    /// skip).
    pub sparse_trace: bool,
}

impl ToolProfile {
    /// BAP-style profile: Pin tracer that follows traps, threads, but whose
    /// lifter lacks the stack and floating-point instruction groups.
    pub fn bap() -> ToolProfile {
        ToolProfile {
            name: "BAP".to_string(),
            style: EngineStyle::Trace,
            support: SupportMatrix::full()
                .without(InsnClass::Stack)
                .without(InsnClass::FpArith)
                .without(InsnClass::FpConvert)
                .without(InsnClass::FpBranch)
                .without(InsnClass::FpMem),
            taint_policy: TaintPolicy {
                sources: TaintSources::argv_only(),
                through_files: false,
                through_pipes: false,
                across_threads: true,
                across_processes: false,
                through_pointers: true,
            },
            sym_policy: PropagationPolicy {
                through_files: false,
                through_pipes: false,
                across_threads: true,
                across_processes: false,
            },
            memory_model: MemoryModel::Concretize,
            float_mode: FloatMode::Reject,
            argv_model: ArgvModel::FixedNonZero,
            trap_support: TrapSupport::Follow,
            follows_threads: true,
            follows_forks: false,
            unconstrained_sys_returns: false,
            loads_dyn_libs: true,
            opaque_fresh_returns: false,
            unsupported_syscalls: Vec::new(),
            models_env_as_constraints: false,
            solver_budget: PAPER_TOOL_BUDGET,
            incremental_solver: false,
            step_budget: 2_000_000,
            max_rounds: 24,
            use_dataflow_hints: false,
            sparse_trace: false,
        }
    }

    /// Triton-style profile: Pin tracer without trap/thread support and a
    /// lifter missing the float-conversion and float-branch groups
    /// (`cvtsi2sd` / `ucomisd` in the paper).
    pub fn triton() -> ToolProfile {
        ToolProfile {
            name: "Triton".to_string(),
            style: EngineStyle::Trace,
            support: SupportMatrix::full()
                .without(InsnClass::FpConvert)
                .without(InsnClass::FpBranch),
            taint_policy: TaintPolicy {
                sources: TaintSources::argv_only(),
                through_files: false,
                through_pipes: false,
                across_threads: false,
                across_processes: false,
                through_pointers: true,
            },
            sym_policy: PropagationPolicy::direct_only(),
            memory_model: MemoryModel::Concretize,
            float_mode: FloatMode::Reject,
            argv_model: ArgvModel::FixedNonZero,
            trap_support: TrapSupport::MissingLift,
            follows_threads: false,
            follows_forks: false,
            unconstrained_sys_returns: false,
            loads_dyn_libs: true,
            opaque_fresh_returns: false,
            unsupported_syscalls: Vec::new(),
            models_env_as_constraints: true,
            solver_budget: PAPER_TOOL_BUDGET,
            incremental_solver: false,
            step_budget: 2_000_000,
            max_rounds: 24,
            use_dataflow_hints: false,
            sparse_trace: false,
        }
    }

    /// Angr-style profile with dynamic libraries loaded: full lifter,
    /// symbolic-index memory up to one level, syscall simulation.
    pub fn angr() -> ToolProfile {
        ToolProfile {
            name: "Angr".to_string(),
            style: EngineStyle::Emulation,
            support: SupportMatrix::full(),
            taint_policy: TaintPolicy {
                sources: TaintSources::argv_only(),
                through_files: false,
                through_pipes: false,
                across_threads: false,
                across_processes: false,
                through_pointers: true,
            },
            sym_policy: PropagationPolicy::direct_only(),
            memory_model: MemoryModel::SymbolicMap {
                max_indirection: 1,
                region: 128,
            },
            float_mode: FloatMode::Reject,
            argv_model: ArgvModel::Variable,
            trap_support: TrapSupport::Crash,
            follows_threads: false,
            follows_forks: false,
            unconstrained_sys_returns: true,
            loads_dyn_libs: true,
            opaque_fresh_returns: false,
            unsupported_syscalls: vec![bomblab_isa::sys::NET_GET],
            models_env_as_constraints: false,
            solver_budget: PAPER_TOOL_BUDGET,
            incremental_solver: false,
            step_budget: 2_000_000,
            max_rounds: 24,
            use_dataflow_hints: false,
            sparse_trace: false,
        }
    }

    /// Angr-style profile *without* loading dynamic libraries: library
    /// calls become opaque summaries with unconstrained returns.
    pub fn angr_nolib() -> ToolProfile {
        ToolProfile {
            name: "Angr-NoLib".to_string(),
            sym_policy: PropagationPolicy {
                through_files: false,
                through_pipes: true,
                across_threads: false,
                across_processes: true,
            },
            taint_policy: TaintPolicy {
                sources: TaintSources::argv_only(),
                through_files: false,
                through_pipes: true,
                across_threads: false,
                across_processes: true,
                through_pointers: true,
            },
            trap_support: TrapSupport::Skip,
            follows_forks: true,
            loads_dyn_libs: false,
            opaque_fresh_returns: true,
            ..ToolProfile::angr()
        }
    }

    /// Everything on: ground truth for diagnosis and the framework's own
    /// best effort.
    pub fn omniscient() -> ToolProfile {
        ToolProfile {
            name: "Omniscient".to_string(),
            style: EngineStyle::Trace,
            support: SupportMatrix::full(),
            taint_policy: TaintPolicy::omniscient(),
            sym_policy: PropagationPolicy::full(),
            memory_model: MemoryModel::SymbolicMap {
                max_indirection: 2,
                region: 256,
            },
            float_mode: FloatMode::LocalSearch,
            argv_model: ArgvModel::Variable,
            trap_support: TrapSupport::Follow,
            follows_threads: true,
            follows_forks: true,
            unconstrained_sys_returns: false,
            loads_dyn_libs: true,
            opaque_fresh_returns: false,
            unsupported_syscalls: Vec::new(),
            models_env_as_constraints: false,
            solver_budget: SolverBudget::default(),
            incremental_solver: true,
            step_budget: 4_000_000,
            max_rounds: 48,
            use_dataflow_hints: true,
            sparse_trace: true,
        }
    }

    /// Projects this profile onto the static analyzer's capability model,
    /// so [`bomblab_sa`] can predict the tool's failure stage per bomb
    /// without executing it.
    pub fn static_capabilities(&self) -> bomblab_sa::Capabilities {
        let max_indirection = match self.memory_model {
            MemoryModel::Concretize => 0,
            MemoryModel::SymbolicMap {
                max_indirection, ..
            } => u8::try_from(max_indirection).unwrap_or(u8::MAX),
        };
        bomblab_sa::Capabilities {
            name: self.name.clone(),
            lifts_stack: self.support.supports(InsnClass::Stack),
            lifts_fp_arith: self.support.supports(InsnClass::FpArith),
            lifts_fp_convert: self.support.supports(InsnClass::FpConvert),
            lifts_fp_branch: self.support.supports(InsnClass::FpBranch),
            float_solver: self.float_mode == FloatMode::LocalSearch,
            trap_model: match self.trap_support {
                TrapSupport::Follow => bomblab_sa::TrapModel::Follow,
                TrapSupport::MissingLift => bomblab_sa::TrapModel::MissingLift,
                TrapSupport::Crash => bomblab_sa::TrapModel::Crash,
                TrapSupport::Skip => bomblab_sa::TrapModel::Skip,
            },
            max_indirection,
            argv_variable: self.argv_model == ArgvModel::Variable,
            models_env_as_constraints: self.models_env_as_constraints,
            loads_dyn_libs: self.loads_dyn_libs,
            sim_sys_returns: self.unconstrained_sys_returns,
            opaque_lib_returns: self.opaque_fresh_returns,
            follows_threads: self.follows_threads,
            sym_across_threads: self.taint_policy.across_threads,
            follows_forks: self.follows_forks,
            tracks_files: self.taint_policy.through_files,
            tracks_pipes: self.taint_policy.through_pipes,
            unsupported_syscalls: self.unsupported_syscalls.clone(),
            style: match self.style {
                EngineStyle::Trace => bomblab_sa::Style::Trace,
                EngineStyle::Emulation => bomblab_sa::Style::Emulation,
            },
            small_solver_budget: self.solver_budget.max_formula_nodes
                <= PAPER_TOOL_BUDGET.max_formula_nodes,
            // The claripy-style float abort and the simulated filesystem
            // both ship with the full-library emulation environment.
            float_crash: self.style == EngineStyle::Emulation
                && self.float_mode == FloatMode::Reject
                && self.loads_dyn_libs,
            sim_fs: self.unconstrained_sys_returns && self.loads_dyn_libs,
        }
    }

    /// The paper's four evaluated configurations, in Table II column order.
    pub fn paper_lineup() -> Vec<ToolProfile> {
        vec![
            ToolProfile::bap(),
            ToolProfile::triton(),
            ToolProfile::angr(),
            ToolProfile::angr_nolib(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bomblab_isa::InsnClass;

    #[test]
    fn paper_lineup_matches_table_ii_column_order() {
        let names: Vec<String> = ToolProfile::paper_lineup()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, ["BAP", "Triton", "Angr", "Angr-NoLib"]);
    }

    #[test]
    fn bap_lacks_stack_and_float_lifting() {
        let bap = ToolProfile::bap();
        assert!(!bap.support.supports(InsnClass::Stack));
        assert!(!bap.support.supports(InsnClass::FpConvert));
        assert!(bap.support.supports(InsnClass::IntAlu));
        assert_eq!(bap.trap_support, TrapSupport::Follow);
        assert!(bap.follows_threads);
    }

    #[test]
    fn triton_lacks_float_conversions_and_trap_tracing() {
        let triton = ToolProfile::triton();
        assert!(!triton.support.supports(InsnClass::FpConvert));
        assert!(!triton.support.supports(InsnClass::FpBranch));
        assert!(triton.support.supports(InsnClass::Stack));
        assert_eq!(triton.trap_support, TrapSupport::MissingLift);
        assert!(triton.models_env_as_constraints);
    }

    #[test]
    fn angr_variants_differ_only_in_library_handling_and_policies() {
        let angr = ToolProfile::angr();
        let nolib = ToolProfile::angr_nolib();
        assert!(angr.loads_dyn_libs && !nolib.loads_dyn_libs);
        assert!(!angr.follows_forks && nolib.follows_forks);
        assert!(nolib.opaque_fresh_returns);
        assert_eq!(angr.style, EngineStyle::Emulation);
        assert_eq!(nolib.style, EngineStyle::Emulation);
        // Both simulate syscalls and use the symbolic-index memory model.
        assert!(angr.unconstrained_sys_returns && nolib.unconstrained_sys_returns);
        assert!(matches!(
            angr.memory_model,
            bomblab_symex::MemoryModel::SymbolicMap {
                max_indirection: 1,
                ..
            }
        ));
    }

    #[test]
    fn static_capabilities_project_onto_the_analyzers_paper_profiles() {
        // The static analyzer carries its own copy of the four paper
        // profiles (used by its unit tests); the study derives
        // capabilities from ToolProfile instead. Both must agree field
        // for field, or the static/dynamic comparison is meaningless.
        let sa_profiles = bomblab_sa::Capabilities::paper_profiles();
        for (profile, want) in ToolProfile::paper_lineup().iter().zip(&sa_profiles) {
            let mut got = profile.static_capabilities();
            got.name.clone_from(&want.name); // display names differ in case
            assert_eq!(&got, want, "{} capability projection drifted", profile.name);
        }
        // The omniscient profile must not inherit any paper handicap.
        let omni = ToolProfile::omniscient().static_capabilities();
        assert!(omni.float_solver);
        assert!(!omni.small_solver_budget);
        assert!(!omni.float_crash && !omni.sim_fs);
    }

    #[test]
    fn omniscient_enables_everything() {
        let omni = ToolProfile::omniscient();
        assert!(omni.taint_policy.sources.time);
        assert!(omni.taint_policy.through_files);
        assert!(omni.follows_threads && omni.follows_forks);
        assert_eq!(omni.trap_support, TrapSupport::Follow);
        assert!(omni.unsupported_syscalls.is_empty());
    }
}
