//! World inputs: everything a test case can control about a run.

use bomblab_solver::Model;
use bomblab_vm::MachineConfig;

/// A complete assignment of the program's controllable environment — the
/// "test case" a concolic executor generates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorldInput {
    /// Bytes of `argv[1]` (may contain embedded NULs, which effectively
    /// shorten the C string the program sees).
    pub argv1: Vec<u8>,
    /// Value returned by `time`.
    pub epoch: u64,
    /// Value returned by `getuid`.
    pub uid: u64,
    /// Response served by `net_get`.
    pub net: Vec<u8>,
    /// Bytes available on stdin.
    pub stdin: Vec<u8>,
    /// Initial files.
    pub files: Vec<(String, Vec<u8>)>,
}

impl Default for WorldInput {
    fn default() -> WorldInput {
        WorldInput {
            argv1: b"AAAAAAAA".to_vec(),
            epoch: 1_500_000_000,
            uid: 1000,
            net: b"HELLO FROM BVM-NET\n".to_vec(),
            stdin: Vec::new(),
            files: Vec::new(),
        }
    }
}

impl WorldInput {
    /// A default world with the given `argv[1]` seed.
    pub fn with_arg(arg: impl Into<Vec<u8>>) -> WorldInput {
        WorldInput {
            argv1: arg.into(),
            ..WorldInput::default()
        }
    }

    /// Converts to a machine configuration.
    pub fn to_config(&self, trace: bool, step_budget: u64) -> MachineConfig {
        MachineConfig {
            argv: vec![b"bomb".to_vec(), self.argv1.clone()],
            stdin: self.stdin.clone(),
            files: self.files.clone(),
            epoch: self.epoch,
            uid: self.uid,
            net_response: self.net.clone(),
            step_budget,
            quantum: 64,
            trace,
            // Full capture by default; the engine arms taint-gated elision
            // separately for profiles that opt in.
            sparse_taint: None,
            bbcache: true,
        }
    }

    /// Applies a solver model: variables named `arg1_b{i}` replace argv
    /// bytes, `time` replaces the epoch, `net_b{i}` / `stdin_b{i}` replace
    /// environment bytes. Unknown variables (e.g. `sysret_*`) are ignored —
    /// the world cannot honour them, which is exactly how partial (`P`)
    /// outcomes arise.
    pub fn apply_model(&self, model: &Model) -> WorldInput {
        let mut out = self.clone();
        for (name, value) in model.iter() {
            if let Some(rest) = name.strip_prefix("arg1_b") {
                if let Ok(i) = rest.parse::<usize>() {
                    if i < out.argv1.len() {
                        out.argv1[i] = *value as u8;
                    }
                }
            } else if name.as_ref() == "time" {
                out.epoch = *value;
            } else if let Some(rest) = name.strip_prefix("net_b") {
                if let Ok(i) = rest.parse::<usize>() {
                    if i < out.net.len() {
                        out.net[i] = *value as u8;
                    }
                }
            } else if let Some(rest) = name.strip_prefix("stdin_b") {
                if let Ok(i) = rest.parse::<usize>() {
                    if i < out.stdin.len() {
                        out.stdin[i] = *value as u8;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bomblab_solver::Model;

    #[test]
    fn apply_model_maps_variable_namespaces() {
        let mut model = Model::default();
        model.insert("arg1_b0", b'X' as u64);
        model.insert("arg1_b2", b'Z' as u64);
        model.insert("time", 42);
        model.insert("sysret_9", 1234); // must be ignored
        let base = WorldInput::with_arg("AAA");
        let out = base.apply_model(&model);
        assert_eq!(out.argv1, b"XAZ");
        assert_eq!(out.epoch, 42);
        assert_eq!(out.uid, base.uid);
    }

    #[test]
    fn apply_model_ignores_out_of_range_bytes() {
        let mut model = Model::default();
        model.insert("arg1_b99", b'!' as u64);
        let base = WorldInput::with_arg("AB");
        assert_eq!(base.apply_model(&model).argv1, b"AB");
    }

    #[test]
    fn apply_model_rewrites_net_and_stdin() {
        let mut model = Model::default();
        model.insert("net_b0", b'C' as u64);
        model.insert("stdin_b1", b'D' as u64);
        let base = WorldInput {
            net: b"xy".to_vec(),
            stdin: b"ab".to_vec(),
            ..WorldInput::default()
        };
        let out = base.apply_model(&model);
        assert_eq!(out.net, b"Cy");
        assert_eq!(out.stdin, b"aD");
    }

    #[test]
    fn to_config_threads_every_field() {
        let input = WorldInput {
            argv1: b"zz".to_vec(),
            epoch: 7,
            uid: 8,
            net: b"n".to_vec(),
            stdin: b"s".to_vec(),
            files: vec![("f".into(), b"c".to_vec())],
        };
        let config = input.to_config(true, 1234);
        assert_eq!(config.argv[1], b"zz");
        assert_eq!(config.epoch, 7);
        assert_eq!(config.uid, 8);
        assert_eq!(config.net_response, b"n");
        assert_eq!(config.stdin, b"s");
        assert_eq!(config.files.len(), 1);
        assert!(config.trace);
        assert_eq!(config.step_budget, 1234);
        assert!(config.bbcache, "cached dispatch is the default");
        assert!(config.sparse_taint.is_none(), "full capture is the default");
    }
}
