//! The study's outcome labels — the paper's result vocabulary.

use std::fmt;

/// Result of a concolic tool's attempt at one logic bomb, using the DSN'17
/// paper's labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The tool generated an input that detonates the bomb (`✓`).
    Solved,
    /// Symbolic-variable declaration failure.
    Es0,
    /// Instruction tracing / lifting failure.
    Es1,
    /// Data-propagation failure.
    Es2,
    /// Constraint-modeling failure.
    Es3,
    /// Abnormal exit or resource exhaustion (`E`).
    Abnormal,
    /// Partial success: the tool claims the path reachable but the
    /// generated values are insufficient (Angr's syscall simulation, `P`).
    Partial,
}

impl Outcome {
    /// The paper's table glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            Outcome::Solved => "OK",
            Outcome::Es0 => "Es0",
            Outcome::Es1 => "Es1",
            Outcome::Es2 => "Es2",
            Outcome::Es3 => "Es3",
            Outcome::Abnormal => "E",
            Outcome::Partial => "P",
        }
    }

    /// Parses a [`glyph`](Outcome::glyph) back into the label — the
    /// inverse the checkpoint journal needs to replay recorded cells.
    pub fn from_glyph(glyph: &str) -> Option<Outcome> {
        match glyph {
            "OK" => Some(Outcome::Solved),
            "Es0" => Some(Outcome::Es0),
            "Es1" => Some(Outcome::Es1),
            "Es2" => Some(Outcome::Es2),
            "Es3" => Some(Outcome::Es3),
            "E" => Some(Outcome::Abnormal),
            "P" => Some(Outcome::Partial),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.glyph())
    }
}

/// The static analyzer's predicted stage uses the same vocabulary; this
/// conversion lets the study compare predictions with observed outcomes.
impl From<bomblab_sa::Stage> for Outcome {
    fn from(stage: bomblab_sa::Stage) -> Outcome {
        match stage {
            bomblab_sa::Stage::Solved => Outcome::Solved,
            bomblab_sa::Stage::Es0 => Outcome::Es0,
            bomblab_sa::Stage::Es1 => Outcome::Es1,
            bomblab_sa::Stage::Es2 => Outcome::Es2,
            bomblab_sa::Stage::Es3 => Outcome::Es3,
            bomblab_sa::Stage::Abnormal => Outcome::Abnormal,
            bomblab_sa::Stage::Partial => Outcome::Partial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_match_the_papers_vocabulary() {
        assert_eq!(Outcome::Solved.glyph(), "OK");
        assert_eq!(Outcome::Es0.to_string(), "Es0");
        assert_eq!(Outcome::Es3.to_string(), "Es3");
        assert_eq!(Outcome::Abnormal.to_string(), "E");
        assert_eq!(Outcome::Partial.to_string(), "P");
    }

    #[test]
    fn glyphs_round_trip() {
        for o in [
            Outcome::Solved,
            Outcome::Es0,
            Outcome::Es1,
            Outcome::Es2,
            Outcome::Es3,
            Outcome::Abnormal,
            Outcome::Partial,
        ] {
            assert_eq!(Outcome::from_glyph(o.glyph()), Some(o));
        }
        assert_eq!(Outcome::from_glyph("??"), None);
    }
}
