//! # bomblab-concolic — the concolic execution engine and study harness
//!
//! This crate assembles the substrates (`bomblab-vm`, `bomblab-taint`,
//! `bomblab-ir`, `bomblab-symex`, `bomblab-solver`) into the DSN'17
//! paper's conceptual framework (Figure 1):
//!
//! ```text
//! concrete run ──trace──▶ taint filter ──▶ lift ──▶ constraint extraction
//!      ▲                                                   │
//!      └── scheduler ◀── new test cases ◀── solver ◀── negate branch
//! ```
//!
//! * [`ToolProfile`] captures a tool's capability surface; presets model
//!   the paper's BAP / Triton / Angr / Angr-NoLib configurations, plus an
//!   omniscient profile that enables every mechanism.
//! * [`Engine::explore`] runs the loop against a [`Subject`] until the
//!   logic bomb detonates or the evidence determines one of the paper's
//!   failure labels ([`Outcome`]).
//! * [`study`] runs the full bombs × profiles matrix and renders Table II.
//!
//! ## Example
//!
//! ```
//! use bomblab_concolic::{Engine, Subject, ToolProfile, WorldInput, Outcome};
//! use bomblab_concolic::engine::GroundTruth;
//! use bomblab_rt::link_program;
//!
//! let image = link_program(r#"
//!     .extern atoi
//!     .global _start
//! _start:
//!     ld a0, [a1+8]
//!     call atoi
//!     li t0, 41
//!     bne a0, t0, no
//!     li a0, 42
//!     li sv, 0
//!     sys
//! no: li a0, 0
//!     li sv, 0
//!     sys
//! "#)?;
//! let subject = Subject {
//!     name: "mini".into(),
//!     image,
//!     lib: None,
//!     seed: WorldInput::with_arg("70"),
//! };
//! let engine = Engine::new(ToolProfile::omniscient());
//! let attempt = engine.explore(&subject, &GroundTruth::default());
//! assert_eq!(attempt.outcome, Outcome::Solved);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod chaos;
pub mod checkpoint;
pub mod engine;
pub mod outcome;
pub mod profile;
pub mod study;
pub mod world;

pub use chaos::{chaos_sweep, check_containment, ChaosConfig, SweepOutcome};
pub use engine::{
    ground_truth, Attempt, CrashDiag, Engine, Evidence, GroundTruth, StaticHints, Subject,
};
pub use outcome::Outcome;
pub use profile::{ArgvModel, EngineStyle, ToolProfile, TrapSupport};
pub use study::{run_study, run_study_jobs, run_study_with, StudyCase, StudyOptions, StudyReport};
pub use world::WorldInput;
