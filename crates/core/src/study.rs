//! The study runner: bombs × profiles → the paper's Table II.

use crate::engine::{ground_truth, Attempt, Engine, GroundTruth, Subject};
use crate::outcome::Outcome;
use crate::profile::ToolProfile;
use crate::world::WorldInput;
use std::fmt::Write as _;

/// One dataset entry: a subject plus its known trigger and the outcome row
/// the paper reports (the oracle used for agreement scoring).
#[derive(Debug, Clone)]
pub struct StudyCase {
    /// The program under test.
    pub subject: Subject,
    /// Challenge category (Table II's left column).
    pub category: String,
    /// One-line description of the challenge instance.
    pub description: String,
    /// An input known to detonate the bomb (ground truth).
    pub trigger: WorldInput,
    /// The paper's Table-II row for [BAP, Triton, Angr, Angr-NoLib], if
    /// this case corresponds to a paper row.
    pub paper_expected: Option<[Outcome; 4]>,
}

/// Result of one (case, profile) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Tool name.
    pub profile: String,
    /// What our engine produced.
    pub outcome: Outcome,
    /// The paper's label for this cell, when known.
    pub expected: Option<Outcome>,
    /// The full attempt record.
    pub attempt: Attempt,
}

/// Result of one dataset row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Case name.
    pub name: String,
    /// Challenge category.
    pub category: String,
    /// Per-profile cells, in profile order.
    pub cells: Vec<CellResult>,
    /// Ground truth derived from the trigger.
    pub ground: GroundTruth,
}

/// The full study outcome.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Profile names, in column order.
    pub profiles: Vec<String>,
    /// Per-bomb rows.
    pub rows: Vec<RowResult>,
}

impl StudyReport {
    /// Number of solved cases per profile column.
    pub fn solved_counts(&self) -> Vec<usize> {
        (0..self.profiles.len())
            .map(|col| {
                self.rows
                    .iter()
                    .filter(|r| r.cells[col].outcome == Outcome::Solved)
                    .count()
            })
            .collect()
    }

    /// (matching cells, total comparable cells) against the paper oracle.
    pub fn agreement(&self) -> (usize, usize) {
        let mut hit = 0;
        let mut total = 0;
        for row in &self.rows {
            for cell in &row.cells {
                if let Some(expected) = cell.expected {
                    total += 1;
                    if expected == cell.outcome {
                        hit += 1;
                    }
                }
            }
        }
        (hit, total)
    }

    /// Renders the Table-II-style result matrix as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "| Category | Case |");
        for p in &self.profiles {
            let _ = write!(out, " {p} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|---|");
        for _ in &self.profiles {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} | {} |", row.category, row.name);
            for cell in &row.cells {
                match cell.expected {
                    Some(e) if e != cell.outcome => {
                        let _ = write!(out, " **{}** (paper: {e}) |", cell.outcome);
                    }
                    _ => {
                        let _ = write!(out, " {} |", cell.outcome);
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "| | **solved** |");
        for c in self.solved_counts() {
            let _ = write!(out, " **{c}** |");
        }
        let _ = writeln!(out);
        let (hit, total) = self.agreement();
        if total > 0 {
            let _ = writeln!(
                out,
                "\nAgreement with the paper's Table II: {hit}/{total} cells."
            );
        }
        out
    }
}

/// Runs every case against every profile, logging progress to stderr.
pub fn run_study(cases: &[StudyCase], profiles: &[ToolProfile]) -> StudyReport {
    let mut rows = Vec::new();
    for case in cases {
        let t0 = std::time::Instant::now();
        let ground = ground_truth(&case.subject, &case.trigger);
        eprintln!(
            "[study] {}: ground truth in {:.1?}",
            case.subject.name,
            t0.elapsed()
        );
        let mut cells = Vec::new();
        for (col, profile) in profiles.iter().enumerate() {
            let t1 = std::time::Instant::now();
            let engine = Engine::new(profile.clone());
            let attempt = engine.explore(&case.subject, &ground);
            eprintln!(
                "[study]   {} x {}: {} in {:.1?} ({} rounds, {} queries)",
                case.subject.name,
                profile.name,
                attempt.outcome,
                t1.elapsed(),
                attempt.evidence.rounds,
                attempt.evidence.queries
            );
            cells.push(CellResult {
                profile: profile.name.clone(),
                outcome: attempt.outcome,
                expected: case.paper_expected.and_then(|row| row.get(col).copied()),
                attempt,
            });
        }
        rows.push(RowResult {
            name: case.subject.name.clone(),
            category: case.category.clone(),
            cells,
            ground,
        });
    }
    StudyReport {
        profiles: profiles.iter().map(|p| p.name.clone()).collect(),
        rows,
    }
}
