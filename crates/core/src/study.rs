//! The study runner: bombs × profiles → the paper's Table II.
//!
//! Every (bomb, profile) cell runs inside a crash-containment boundary:
//! the cell is armed with the study's [`bomblab_fault::FaultPlan`] (if
//! any) and a wall-clock deadline, executed under `catch_unwind`, and any
//! panic — injected, organic, or deadline — lands as a well-formed
//! `Abnormal` cell with a [`CrashDiag`] instead of killing the study.

use crate::checkpoint::{self, CellRecord, Journal};
use crate::engine::GroundTruth;
use crate::engine::{ground_truth, Attempt, CrashDiag, Engine, Evidence, StaticHints, Subject};
use crate::outcome::Outcome;
use crate::profile::ToolProfile;
use crate::world::WorldInput;
use bomblab_fault as fault;
use bomblab_obs as obs;
use bomblab_obs::json::{str_array, Obj};
use bomblab_obs::trace::{render_cell, SCHEMA_VERSION};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One dataset entry: a subject plus its known trigger and the outcome row
/// the paper reports (the oracle used for agreement scoring).
#[derive(Debug, Clone)]
pub struct StudyCase {
    /// The program under test.
    pub subject: Subject,
    /// Challenge category (Table II's left column).
    pub category: String,
    /// One-line description of the challenge instance.
    pub description: String,
    /// An input known to detonate the bomb (ground truth).
    pub trigger: WorldInput,
    /// The paper's Table-II row for [BAP, Triton, Angr, Angr-NoLib], if
    /// this case corresponds to a paper row.
    pub paper_expected: Option<[Outcome; 4]>,
}

/// Result of one (case, profile) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Tool name.
    pub profile: String,
    /// What our engine produced.
    pub outcome: Outcome,
    /// The paper's label for this cell, when known.
    pub expected: Option<Outcome>,
    /// Wall-clock nanoseconds the cell's exploration took.
    pub wall_ns: u64,
    /// The full attempt record.
    pub attempt: Attempt,
    /// Per-cell observation profile (spans, events, counters), collected
    /// when [`StudyOptions::observe`] is set. Never feeds the Table-II
    /// report, so its timing data cannot perturb the snapshot.
    pub obs: Option<obs::CellProfile>,
}

/// Result of one dataset row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Case name.
    pub name: String,
    /// Challenge category.
    pub category: String,
    /// Per-profile cells, in profile order.
    pub cells: Vec<CellResult>,
    /// Ground truth derived from the trigger.
    pub ground: GroundTruth,
    /// Per-profile outcome predicted by static analysis alone (no
    /// execution), in profile order.
    pub static_predictions: Vec<Outcome>,
    /// Diagnostic when this row's static analysis crashed and was
    /// contained (the dynamic cells still ran, with default hints).
    pub analysis_crash: Option<CrashDiag>,
    /// Observation profile of the phase-1 unit (ground truth + static
    /// analysis), collected when [`StudyOptions::observe`] is set.
    pub analysis_obs: Option<obs::CellProfile>,
}

/// How to run a study: worker count, chaos plan, containment deadline.
#[derive(Debug, Clone)]
pub struct StudyOptions {
    /// Worker threads for the two fan-out phases.
    pub jobs: usize,
    /// Fault plan armed around every cell (and every per-case static
    /// analysis). `None` leaves the fault layer fully inert.
    pub fault_plan: Option<fault::FaultPlan>,
    /// Per-cell wall-clock deadline; a cell past it is recorded as
    /// `Abnormal` ("cell wall-clock deadline exceeded") instead of
    /// hanging the study. `None` disables the watchdog.
    pub cell_deadline: Option<Duration>,
    /// Collect per-cell observation profiles (spans, events, counters)
    /// for the JSONL trace sink and the profile-summary sidecar. Off by
    /// default, leaving every instrumentation site a single relaxed
    /// atomic load.
    pub observe: bool,
    /// Extra attempts granted to a cell whose failure is classified as
    /// transient (injected fault, deadline trip). Retries run *unfaulted*
    /// with an escalating deadline (1x/2x/4x) after a deterministic
    /// backoff; two identical organic panics quarantine the cell instead.
    /// `0` (the default) keeps the historical single-attempt semantics —
    /// chaos sweeps rely on that to observe raw containment.
    pub retries: u32,
    /// Directory for the checkpoint journal. When set, every completed
    /// cell is appended to `journal.jsonl` (atomic rewrite + rename) so a
    /// killed study can resume.
    pub checkpoint: Option<PathBuf>,
    /// Replay cells recorded in the checkpoint journal instead of
    /// re-executing them. Only meaningful with [`StudyOptions::checkpoint`];
    /// a missing, torn, or configuration-mismatched journal replays
    /// nothing and the study simply runs in full.
    pub resume: bool,
    /// Directory for the persistent solver cache. Stateless paper-tool
    /// profiles warm it write-only (their verdicts cannot change);
    /// `incremental_solver` profiles read through it with every loaded
    /// model re-verified by concrete evaluation.
    pub solver_cache_dir: Option<PathBuf>,
    /// Arm the study-wide shared in-process solver cache: one sharded
    /// model store every cell's solvers attach to, so slices repeated
    /// across (bomb, profile) cells are solved once per *study* instead of
    /// once per cell. Same gating discipline as the disk cache — stateless
    /// paper-tool profiles attach write-only, `incremental_solver`
    /// profiles read through with concrete-eval re-verification — so
    /// Table II stays byte-identical with this on or off. On by default.
    pub shared_cache: bool,
}

impl Default for StudyOptions {
    fn default() -> StudyOptions {
        StudyOptions {
            jobs: 1,
            fault_plan: None,
            // Generous: real cells finish in milliseconds-to-seconds, so
            // the default deadline only ever fires on a genuine hang (and
            // its report text carries no timing, keeping reports
            // byte-identical across schedulers).
            cell_deadline: Some(Duration::from_secs(300)),
            observe: false,
            retries: 0,
            checkpoint: None,
            resume: false,
            solver_cache_dir: None,
            shared_cache: true,
        }
    }
}

/// Study-level durability counters. Never rendered into the Table-II
/// report (replay and checkpoint health must not perturb the snapshot);
/// they flow into the trace summary and the study bench instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StudyStats {
    /// Cells replayed from the checkpoint journal instead of executed.
    pub cells_replayed: u64,
    /// Journal appends that failed (I/O error or injected fault). Each is
    /// self-healing — the record lives in memory and the next successful
    /// append re-publishes it — so the count is diagnostic, not fatal.
    pub checkpoint_io_errors: u64,
    /// Cells whose scheduling cost came from a checkpoint journal's
    /// historical wall clock (cost-aware LPT ordering).
    pub sched_costed: u64,
    /// Cells scheduled on the static-analysis fallback estimate (no
    /// usable history).
    pub sched_estimated: u64,
}

/// The full study outcome.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Profile names, in column order.
    pub profiles: Vec<String>,
    /// Per-bomb rows.
    pub rows: Vec<RowResult>,
    /// Durability counters (checkpoint replay/append health).
    pub stats: StudyStats,
}

impl StudyReport {
    /// Number of solved cases per profile column.
    pub fn solved_counts(&self) -> Vec<usize> {
        (0..self.profiles.len())
            .map(|col| {
                self.rows
                    .iter()
                    .filter(|r| r.cells[col].outcome == Outcome::Solved)
                    .count()
            })
            .collect()
    }

    /// (matching cells, total comparable cells) against the paper oracle.
    pub fn agreement(&self) -> (usize, usize) {
        let mut hit = 0;
        let mut total = 0;
        for row in &self.rows {
            for cell in &row.cells {
                if let Some(expected) = cell.expected {
                    total += 1;
                    if expected == cell.outcome {
                        hit += 1;
                    }
                }
            }
        }
        (hit, total)
    }

    /// (matching cells, total cells) of static predictions against the
    /// dynamically observed outcomes.
    pub fn static_agreement(&self) -> (usize, usize) {
        let mut hit = 0;
        let mut total = 0;
        for row in &self.rows {
            for (cell, predicted) in row.cells.iter().zip(&row.static_predictions) {
                total += 1;
                if *predicted == cell.outcome {
                    hit += 1;
                }
            }
        }
        (hit, total)
    }

    /// Renders the Table-II-style result matrix as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "| Category | Case |");
        for p in &self.profiles {
            let _ = write!(out, " {p} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|---|");
        for _ in &self.profiles {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} | {} |", row.category, row.name);
            for cell in &row.cells {
                match cell.expected {
                    Some(e) if e != cell.outcome => {
                        let _ = write!(out, " **{}** (paper: {e}) |", cell.outcome);
                    }
                    _ => {
                        let _ = write!(out, " {} |", cell.outcome);
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "| | **solved** |");
        for c in self.solved_counts() {
            let _ = write!(out, " **{c}** |");
        }
        let _ = writeln!(out);
        let (hit, total) = self.agreement();
        if total > 0 {
            let _ = writeln!(
                out,
                "\nAgreement with the paper's Table II: {hit}/{total} cells."
            );
        }
        let (shit, stotal) = self.static_agreement();
        if stotal > 0 {
            let _ = writeln!(out, "\n## Static prediction vs dynamic outcome\n");
            let _ = write!(out, "| Case |");
            for p in &self.profiles {
                let _ = write!(out, " {p} |");
            }
            let _ = writeln!(out);
            let _ = write!(out, "|---|");
            for _ in &self.profiles {
                let _ = write!(out, "---|");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "| {} |", row.name);
                for (cell, predicted) in row.cells.iter().zip(&row.static_predictions) {
                    if *predicted == cell.outcome {
                        let _ = write!(out, " {predicted} |");
                    } else {
                        let _ = write!(out, " **{predicted}** (ran: {}) |", cell.outcome);
                    }
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(
                out,
                "\nStatic/dynamic agreement: {shit}/{stotal} cells \
                 (predictions made without executing the bombs)."
            );
        }
        let crashes = self.contained_crashes();
        if !crashes.is_empty() {
            let _ = writeln!(out, "\n## Contained crashes\n");
            for line in crashes {
                let _ = writeln!(out, "- {line}");
            }
        }
        out
    }

    /// Deterministic one-line descriptions of every contained failure:
    /// static-analysis crashes per row, then per-cell crash diagnostics
    /// and injected-fault logs, in row/profile order. Empty on a healthy
    /// run, so the Table-II snapshot is untouched.
    pub fn contained_crashes(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for row in &self.rows {
            if let Some(diag) = &row.analysis_crash {
                lines.push(format!(
                    "{} static analysis [{}]: {}",
                    row.name, diag.stage, diag.message
                ));
            }
            for cell in &row.cells {
                let ev = &cell.attempt.evidence;
                if ev.crash.is_none() && ev.fault_log.is_empty() {
                    continue;
                }
                let mut line = format!("{} x {}", row.name, cell.profile);
                match &ev.crash {
                    Some(diag) => {
                        let _ = write!(line, " [{}]: {}", diag.stage, diag.message);
                    }
                    None => {
                        let _ = write!(line, ": survived injection as {}", cell.outcome);
                    }
                }
                if !ev.fault_log.is_empty() {
                    let _ = write!(line, " (injected: {})", ev.fault_log.join(", "));
                }
                lines.push(line);
            }
        }
        lines
    }

    /// Aggregates every collected per-cell observation profile (phase-1
    /// units and matrix cells) into one study-wide registry. Empty when
    /// the study ran without [`StudyOptions::observe`].
    pub fn metrics(&self) -> obs::MetricsRegistry {
        let mut registry = obs::MetricsRegistry::new();
        for row in &self.rows {
            if let Some(p) = &row.analysis_obs {
                registry.absorb(p);
            }
            for cell in &row.cells {
                if let Some(p) = &cell.obs {
                    registry.absorb(p);
                }
            }
        }
        registry
    }

    /// Cells sorted slowest-first by wall clock, ties broken by dataset
    /// order so the ranking is deterministic.
    fn ranked_cells(&self, key: impl Fn(&CellResult) -> u64) -> Vec<(&RowResult, &CellResult)> {
        let mut ranked: Vec<(usize, &RowResult, &CellResult)> = Vec::new();
        for row in &self.rows {
            for cell in &row.cells {
                ranked.push((ranked.len(), row, cell));
            }
        }
        ranked.sort_by(|a, b| key(b.2).cmp(&key(a.2)).then(a.0.cmp(&b.0)));
        ranked.into_iter().map(|(_, r, c)| (r, c)).collect()
    }

    /// Renders the whole study as JSONL trace lines, in deterministic
    /// dataset order: a `study_start` header, then per row the phase-1
    /// profile, per-cell span/event/counter/hist streams and a `cell`
    /// outcome line, then study-wide `stage_total`, ranking, and
    /// `summary` lines. Every line validates against
    /// [`bomblab_obs::trace::validate_line`].
    pub fn trace_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(
            Obj::new("study_start")
                .u64("schema", SCHEMA_VERSION)
                .u64("bombs", self.rows.len() as u64)
                .raw("profiles", &str_array(&self.profiles))
                .finish(),
        );
        let (mut spans, mut events, mut counters, mut cell_count) = (0u64, 0u64, 0u64, 0u64);
        let mut tally = |p: &obs::CellProfile| {
            spans += p.spans.len() as u64;
            events += p.events.len() as u64;
            counters += p.counters.len() as u64;
        };
        for row in &self.rows {
            if let Some(p) = &row.analysis_obs {
                tally(p);
                render_cell(p, &mut out);
            }
            for cell in &row.cells {
                if let Some(p) = &cell.obs {
                    tally(p);
                    render_cell(p, &mut out);
                }
                cell_count += 1;
                let ev = &cell.attempt.evidence;
                let mut line = Obj::new("cell")
                    .str("bomb", &row.name)
                    .str("profile", &cell.profile)
                    .str("outcome", &cell.outcome.to_string())
                    .u64("wall_ns", cell.wall_ns)
                    .u64("rounds", u64::from(ev.rounds))
                    .u64("queries", u64::from(ev.queries));
                if ev.simplify_hits > 0 {
                    line = line.u64("simplify_hits", ev.simplify_hits);
                }
                if ev.terms_pruned > 0 {
                    line = line.u64("terms_pruned", ev.terms_pruned);
                }
                if ev.slices > 0 {
                    line = line.u64("slices", ev.slices);
                }
                if ev.witness_hits > 0 {
                    line = line.u64("witness_hits", ev.witness_hits);
                }
                if ev.simplify_ns > 0 {
                    line = line.u64("simplify_ns", ev.simplify_ns);
                }
                if ev.interval_ns > 0 {
                    line = line.u64("interval_ns", ev.interval_ns);
                }
                if ev.slice_ns > 0 {
                    line = line.u64("slice_ns", ev.slice_ns);
                }
                if ev.vm_steps > 0 {
                    line = line.u64("vm_steps", ev.vm_steps);
                }
                if ev.bb_hits > 0 {
                    line = line.u64("bb_hits", ev.bb_hits);
                }
                if ev.bb_misses > 0 {
                    line = line.u64("bb_misses", ev.bb_misses);
                }
                if ev.bb_invalidations > 0 {
                    line = line.u64("bb_invalidations", ev.bb_invalidations);
                }
                if ev.steps_decoded > 0 {
                    line = line.u64("steps_decoded", ev.steps_decoded);
                }
                if ev.blocker_skips > 0 {
                    line = line.u64("blocker_skips", ev.blocker_skips);
                }
                if ev.propagations > 0 {
                    line = line.u64("propagations", ev.propagations);
                }
                if ev.lbd_evictions > 0 {
                    line = line.u64("lbd_evictions", ev.lbd_evictions);
                }
                if ev.branches_proven_independent > 0 {
                    line = line.u64(
                        "branches_proven_independent",
                        ev.branches_proven_independent,
                    );
                }
                if ev.independent_skips > 0 {
                    line = line.u64("independent_skips", u64::from(ev.independent_skips));
                }
                if ev.static_slice_checked > 0 {
                    line = line
                        .u64("static_slice_checked", ev.static_slice_checked)
                        .u64("static_slice_agreement", ev.static_slice_agreement);
                }
                if ev.retries > 0 {
                    line = line.u64("retries", u64::from(ev.retries));
                }
                if ev.quarantined {
                    line = line.bool("quarantined", true);
                }
                if ev.retry_backoff_ns > 0 {
                    line = line.u64("retry_backoff_ns", ev.retry_backoff_ns);
                }
                if ev.disk_cache_hits > 0 {
                    line = line.u64("disk_cache_hits", ev.disk_cache_hits);
                }
                if ev.cache_segments_rejected > 0 {
                    line = line.u64("cache_segments_rejected", ev.cache_segments_rejected);
                }
                if ev.shared_cache_hits > 0 {
                    line = line.u64("shared_cache_hits", ev.shared_cache_hits);
                }
                if ev.shared_cache_stores > 0 {
                    line = line.u64("shared_cache_stores", ev.shared_cache_stores);
                }
                if ev.shared_cache_rejected > 0 {
                    line = line.u64("shared_cache_rejected", ev.shared_cache_rejected);
                }
                if ev.trace_steps_full > 0 {
                    line = line.u64("trace_steps_full", ev.trace_steps_full);
                }
                if ev.trace_steps_elided > 0 {
                    line = line.u64("trace_steps_elided", ev.trace_steps_elided);
                }
                if ev.trace_arena_bytes > 0 {
                    line = line.u64("trace_arena_bytes", ev.trace_arena_bytes);
                }
                if let Some(expected) = cell.expected {
                    line = line.str("expected", &expected.to_string());
                }
                if let Some(crash) = &ev.crash {
                    line = line
                        .str("crash_stage", &crash.stage)
                        .str("crash_message", &crash.message);
                }
                out.push(line.finish());
            }
        }
        for (stage, &(hits, ns)) in &self.metrics().stages {
            out.push(
                Obj::new("stage_total")
                    .str("stage", stage)
                    .u64("spans", hits)
                    .u64("ns", ns)
                    .finish(),
            );
        }
        for (rank, (row, cell)) in self
            .ranked_cells(|c| c.wall_ns)
            .into_iter()
            .take(RANKING_DEPTH)
            .enumerate()
        {
            out.push(
                Obj::new("slow_cell")
                    .u64("rank", rank as u64 + 1)
                    .str("bomb", &row.name)
                    .str("profile", &cell.profile)
                    .u64("wall_ns", cell.wall_ns)
                    .finish(),
            );
        }
        for (rank, (row, cell)) in self
            .ranked_cells(|c| u64::from(c.attempt.evidence.queries))
            .into_iter()
            .take(RANKING_DEPTH)
            .enumerate()
        {
            out.push(
                Obj::new("hot_cell")
                    .u64("rank", rank as u64 + 1)
                    .str("bomb", &row.name)
                    .str("profile", &cell.profile)
                    .u64("queries", u64::from(cell.attempt.evidence.queries))
                    .u64("solver_ns", cell.attempt.evidence.solver_ns)
                    .finish(),
            );
        }
        let mut summary = Obj::new("summary")
            .u64("cells", cell_count)
            .u64("spans", spans)
            .u64("events", events)
            .u64("counters", counters);
        if self.stats.cells_replayed > 0 {
            summary = summary.u64("cells_replayed", self.stats.cells_replayed);
        }
        if self.stats.checkpoint_io_errors > 0 {
            summary = summary.u64("checkpoint_io_errors", self.stats.checkpoint_io_errors);
        }
        if self.stats.sched_costed > 0 {
            summary = summary.u64("sched_costed", self.stats.sched_costed);
        }
        if self.stats.sched_estimated > 0 {
            summary = summary.u64("sched_estimated", self.stats.sched_estimated);
        }
        out.push(summary.finish());
        out
    }

    /// Renders the profile-summary sidecar: slowest cells, hottest
    /// solver cells, and the per-stage aggregate breakdown. Emitted
    /// *next to* the Table-II report, never inside it — its timing data
    /// varies run to run while the report stays byte-identical.
    pub fn profile_summary(&self) -> String {
        let metrics = self.metrics();
        let mut out = String::from("# Study profile\n\n");
        let _ = writeln!(
            out,
            "{} observed windows, {} cells in the matrix.\n",
            metrics.cells,
            self.rows.len() * self.profiles.len()
        );

        let _ = writeln!(out, "## Slowest cells\n");
        let _ = writeln!(out, "| # | Case | Profile | Wall | Rounds | Queries |");
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for (rank, (row, cell)) in self
            .ranked_cells(|c| c.wall_ns)
            .into_iter()
            .take(RANKING_DEPTH)
            .enumerate()
        {
            let ev = &cell.attempt.evidence;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                rank + 1,
                row.name,
                cell.profile,
                format_ns(cell.wall_ns),
                ev.rounds,
                ev.queries
            );
        }

        let _ = writeln!(out, "\n## Hottest solver cells\n");
        let _ = writeln!(
            out,
            "| # | Case | Profile | Queries | Solver time | Cache hits |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for (rank, (row, cell)) in self
            .ranked_cells(|c| u64::from(c.attempt.evidence.queries))
            .into_iter()
            .take(RANKING_DEPTH)
            .enumerate()
        {
            let ev = &cell.attempt.evidence;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                rank + 1,
                row.name,
                cell.profile,
                ev.queries,
                format_ns(ev.solver_ns),
                ev.cache_hits
            );
        }

        if !metrics.stages.is_empty() {
            let total_ns: u64 = metrics.stages.values().map(|&(_, ns)| ns).sum();
            let _ = writeln!(out, "\n## Per-stage breakdown\n");
            let _ = writeln!(out, "| Stage | Spans | Total | Share |");
            let _ = writeln!(out, "|---|---|---|---|");
            for (stage, &(hits, ns)) in &metrics.stages {
                let share = (ns * 1000).checked_div(total_ns).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "| {stage} | {hits} | {} | {}.{}% |",
                    format_ns(ns),
                    share / 10,
                    share % 10
                );
            }
        }

        if !metrics.counters.is_empty() {
            let _ = writeln!(out, "\n## Aggregated counters\n");
            let _ = writeln!(out, "| Counter | Total |");
            let _ = writeln!(out, "|---|---|");
            for (name, value) in &metrics.counters {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }

        {
            let mut hits = 0u64;
            let mut pruned = 0u64;
            let mut slices = 0u64;
            let mut witnessed = 0u64;
            let mut queries = 0u64;
            let (mut simp_ns, mut intv_ns, mut slice_ns) = (0u64, 0u64, 0u64);
            for row in &self.rows {
                for cell in &row.cells {
                    let ev = &cell.attempt.evidence;
                    hits += ev.simplify_hits;
                    pruned += ev.terms_pruned;
                    slices += ev.slices;
                    witnessed += ev.witness_hits;
                    queries += u64::from(ev.queries);
                    simp_ns += ev.simplify_ns;
                    intv_ns += ev.interval_ns;
                    slice_ns += ev.slice_ns;
                }
            }
            let _ = writeln!(out, "\n## Query optimizer\n");
            let _ = writeln!(
                out,
                "{queries} queries: {hits} simplifier memo hits, {pruned} \
                 constraints pruned, {slices} slices solved \
                 ({witnessed} by interval witness, no CDCL)."
            );
            let _ = writeln!(
                out,
                "Stage time: simplify {}, interval {}, slicing {}.",
                format_ns(simp_ns),
                format_ns(intv_ns),
                format_ns(slice_ns)
            );
        }

        {
            let mut steps = 0u64;
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut invalidations = 0u64;
            let mut decoded = 0u64;
            let mut blockers = 0u64;
            let mut evictions = 0u64;
            let mut propagations = 0u64;
            let mut shared_hits = 0u64;
            let mut shared_stores = 0u64;
            let mut shared_rejected = 0u64;
            for row in &self.rows {
                for cell in &row.cells {
                    let ev = &cell.attempt.evidence;
                    steps += ev.vm_steps;
                    hits += ev.bb_hits;
                    misses += ev.bb_misses;
                    invalidations += ev.bb_invalidations;
                    decoded += ev.steps_decoded;
                    blockers += ev.blocker_skips;
                    evictions += ev.lbd_evictions;
                    propagations += ev.propagations;
                    shared_hits += ev.shared_cache_hits;
                    shared_stores += ev.shared_cache_stores;
                    shared_rejected += ev.shared_cache_rejected;
                }
            }
            let _ = writeln!(out, "\n## VM dispatch\n");
            let _ = writeln!(
                out,
                "{steps} VM steps: {hits} block-cache hits, {misses} misses, \
                 {invalidations} invalidations, {decoded} byte-decoded."
            );
            let _ = writeln!(
                out,
                "SAT hot loop: {propagations} propagations, {blockers} blocker skips, \
                 {evictions} LBD evictions."
            );
            let _ = writeln!(
                out,
                "Shared solver cache: {shared_stores} models stored, {shared_hits} verified \
                 read-through hits, {shared_rejected} rejected by verification."
            );
        }

        if self.stats.sched_costed + self.stats.sched_estimated > 0 {
            let _ = writeln!(out, "\n## Scheduling\n");
            let _ = writeln!(
                out,
                "Longest-processing-time-first over {} cells: {} costed from journal \
                 history, {} on the static estimate.",
                self.stats.sched_costed + self.stats.sched_estimated,
                self.stats.sched_costed,
                self.stats.sched_estimated
            );
        }

        {
            let mut proven = 0u64;
            let mut skips = 0u64;
            let mut checked = 0u64;
            let mut agreed = 0u64;
            for row in &self.rows {
                for cell in &row.cells {
                    let ev = &cell.attempt.evidence;
                    proven += ev.branches_proven_independent;
                    skips += u64::from(ev.independent_skips);
                    checked += ev.static_slice_checked;
                    agreed += ev.static_slice_agreement;
                }
            }
            if proven + checked > 0 {
                let _ = writeln!(out, "\n## Dataflow hints\n");
                let _ = writeln!(
                    out,
                    "{proven} branch sites proven input-independent, \
                     {skips} flip candidates skipped."
                );
                let _ = writeln!(
                    out,
                    "Slice cross-check: {agreed}/{checked} dynamic cones within \
                     the static slice."
                );
            }
        }

        if let Some(hist) = metrics.hists.get("solver.query_ns") {
            let _ = writeln!(out, "\n## Solver query latency\n");
            let _ = writeln!(
                out,
                "{} queries, mean {}, min {}, max {}.",
                hist.count,
                format_ns(hist.mean()),
                format_ns(hist.min),
                format_ns(hist.max)
            );
        }
        out
    }
}

/// How many cells the slow/hot rankings keep.
const RANKING_DEPTH: usize = 5;

/// Human-readable duration for the profile sidecar.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:02} s",
            ns / 1_000_000_000,
            ns % 1_000_000_000 / 10_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:02} ms", ns / 1_000_000, ns % 1_000_000 / 10_000)
    } else if ns >= 1_000 {
        format!("{}.{:02} us", ns / 1_000, ns % 1_000 / 10)
    } else {
        format!("{ns} ns")
    }
}

/// Maps `f` over `0..n`, fanning the indices across `jobs` scoped worker
/// threads. Equivalent to [`parallel_map_ordered`] with the identity
/// claim order.
fn parallel_map<T, F, R>(jobs: usize, n: usize, f: F, recover: R) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Fn(usize, String) -> T + Sync,
{
    parallel_map_ordered(jobs, n, None, f, recover)
}

/// Maps `f` over `0..n`, fanning the indices across `jobs` scoped worker
/// threads, claiming them in the order given by the `order` permutation
/// (workers pop `order[0], order[1], ..`; `None` means `0, 1, ..`). The
/// claim order only shapes the *schedule* — results always land in the
/// slot of their original index, so the output is `f(0), f(1), ..`
/// regardless of ordering or interleaving. An `order` that is not a
/// permutation of `0..n` is a scheduler bug; it is discarded (identity
/// fallback) rather than allowed to drop or duplicate work.
///
/// Panic containment comes in two layers:
///
/// * every `f(i)` runs under `catch_unwind`, so a panicking item becomes
///   `recover(i, panic_message)` and its worker keeps draining indices;
/// * the fan-out itself runs under `catch_unwind` — a worker can still die
///   (e.g. `recover` itself panicked), and `std::thread::scope` re-raises
///   a spawned thread's panic at join. Containing the scope keeps every
///   finished item's slot, and the dead worker's unfinished slots are
///   backfilled with `recover` afterwards.
///
/// `jobs <= 1` (or a single item) runs inline on this thread with the
/// same containment.
fn parallel_map_ordered<T, F, R>(
    jobs: usize,
    n: usize,
    order: Option<Vec<usize>>,
    f: F,
    recover: R,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Fn(usize, String) -> T + Sync,
{
    let order = order.filter(|o| {
        let mut seen = vec![false; n];
        o.len() == n
            && o.iter()
                .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
    });
    let claim = |k: usize| order.as_ref().map_or(k, |o| o[k]);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let run_one = |i: usize| {
        let value = match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => v,
            Err(payload) => recover(i, fault::panic_message(&*payload)),
        };
        // A poisoned slot just means a previous holder panicked while
        // writing; the data is a plain Option we are about to overwrite.
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
    };
    let fan_out = || {
        if jobs <= 1 || n <= 1 {
            (0..n).for_each(|k| run_one(claim(k)));
        } else {
            let next = AtomicUsize::new(0);
            let (next, run_one, claim) = (&next, &run_one, &claim);
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(n) {
                    scope.spawn(move || loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            return;
                        }
                        run_one(claim(k));
                    });
                }
            });
        }
    };
    // Contain the fan-out itself: if a worker dies past `run_one`'s
    // containment, the scope re-raises that panic here — swallowing it is
    // what makes the slot backfill below reachable.
    let _ = catch_unwind(AssertUnwindSafe(fan_out));
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    recover(
                        i,
                        "study worker died before producing this result".to_string(),
                    )
                })
        })
        .collect()
}

/// Runs every case against every profile, logging progress to stderr.
/// Equivalent to [`run_study_jobs`] with `jobs = 1`.
pub fn run_study(cases: &[StudyCase], profiles: &[ToolProfile]) -> StudyReport {
    run_study_jobs(cases, profiles, 1)
}

/// Runs the study with up to `jobs` worker threads and default
/// containment (no fault plan, generous cell deadline).
pub fn run_study_jobs(cases: &[StudyCase], profiles: &[ToolProfile], jobs: usize) -> StudyReport {
    run_study_with(
        cases,
        profiles,
        &StudyOptions {
            jobs,
            ..StudyOptions::default()
        },
    )
}

/// An `Abnormal` cell standing in for an attempt that never finished:
/// the containment boundary's record of a contained panic or deadline.
fn abnormal_cell(
    case: &StudyCase,
    profile: &ToolProfile,
    col: usize,
    diag: CrashDiag,
    containment: Option<&fault::Containment>,
) -> CellResult {
    let evidence = Evidence {
        abnormal: true,
        injected_faults: containment.map_or(0, |c| c.injected),
        fault_log: containment.map(|c| c.fired.clone()).unwrap_or_default(),
        crash: Some(diag),
        ..Evidence::default()
    };
    CellResult {
        profile: profile.name.clone(),
        outcome: Outcome::Abnormal,
        expected: case.paper_expected.and_then(|row| row.get(col).copied()),
        wall_ns: 0,
        attempt: Attempt {
            outcome: Outcome::Abnormal,
            solved_input: None,
            evidence,
        },
        obs: None,
    }
}

/// The two containment-deadline crash messages. A deadline trip is always
/// a *transient* failure — the retry's escalated deadline exists exactly
/// to give a slow-but-healthy cell room — so it never quarantines.
fn is_deadline_crash(message: &str) -> bool {
    message == "cell wall-clock deadline exceeded"
        || message == "injected stall exceeded the cell deadline"
}

/// Classifies a failed attempt against the previous one: a failure is
/// deterministic (quarantine, stop retrying) iff the same non-deadline
/// crash message appeared twice in a row. Everything else — injected
/// faults (retries run unfaulted, so they cannot repeat), deadline trips,
/// first-time panics — is transient and worth another attempt.
pub(crate) fn failure_is_deterministic(previous: Option<&str>, current: &str) -> bool {
    !is_deadline_crash(current) && previous == Some(current)
}

/// The journal digest of one finished cell.
fn cell_record(index: u64, bomb: &str, cell: &CellResult) -> CellRecord {
    let ev = &cell.attempt.evidence;
    CellRecord {
        index,
        bomb: bomb.to_string(),
        profile: cell.profile.clone(),
        outcome: cell.outcome,
        expected: cell.expected,
        wall_ns: cell.wall_ns,
        rounds: ev.rounds,
        queries: ev.queries,
        injected_faults: ev.injected_faults,
        fault_log: ev.fault_log.clone(),
        crash: ev.crash.clone(),
        retries: ev.retries,
        quarantined: ev.quarantined,
        retry_backoff_ns: ev.retry_backoff_ns,
    }
}

/// Reconstructs a cell from its journal record. The record carries every
/// field the Table-II report and the contained-crashes section read, so a
/// replayed cell renders byte-identically; trace-only counters keep their
/// defaults and the observation profile is absent (the work never re-ran).
fn replay_cell(
    case: &StudyCase,
    profile: &ToolProfile,
    col: usize,
    rec: &CellRecord,
) -> CellResult {
    let evidence = Evidence {
        abnormal: rec.crash.is_some() || rec.injected_faults > 0,
        rounds: rec.rounds,
        queries: rec.queries,
        injected_faults: rec.injected_faults,
        fault_log: rec.fault_log.clone(),
        crash: rec.crash.clone(),
        retries: rec.retries,
        quarantined: rec.quarantined,
        retry_backoff_ns: rec.retry_backoff_ns,
        ..Evidence::default()
    };
    CellResult {
        profile: profile.name.clone(),
        outcome: rec.outcome,
        expected: case.paper_expected.and_then(|row| row.get(col).copied()),
        wall_ns: rec.wall_ns,
        attempt: Attempt {
            outcome: rec.outcome,
            solved_input: None,
            evidence,
        },
        obs: None,
    }
}

/// Fingerprint of everything that determines cell outcomes, stamped into
/// the journal header: resuming under a different matrix, fault plan,
/// retry budget, or deadline must ignore the journal rather than splice
/// foreign cells into the report. (The solver cache directory is excluded
/// on purpose — the persistent cache is verdict-neutral by construction.)
fn study_fingerprint(cases: &[StudyCase], profiles: &[ToolProfile], options: &StudyOptions) -> u64 {
    let mut parts: Vec<String> = Vec::new();
    for case in cases {
        parts.push(format!("case:{}", case.subject.name));
    }
    for profile in profiles {
        parts.push(format!("profile:{}", profile.name));
    }
    parts.push(match &options.fault_plan {
        Some(plan) => format!("plan:{}", plan.to_text()),
        None => "plan:none".to_string(),
    });
    parts.push(format!("retries:{}", options.retries));
    parts.push(match options.cell_deadline {
        Some(d) => format!("deadline:{}", d.as_nanos()),
        None => "deadline:none".to_string(),
    });
    checkpoint::fingerprint(parts.iter().map(String::as_str))
}

/// Runs the study under explicit [`StudyOptions`]. Two fan-out phases:
/// ground truths + static analysis (one unit per case), then the
/// (case, profile) cell matrix (one unit per cell). Rows and cells land
/// in dataset order and no report text depends on timing or scheduling,
/// so the report is byte-for-byte identical for every `jobs` value —
/// with or without an armed fault plan.
pub fn run_study_with(
    cases: &[StudyCase],
    profiles: &[ToolProfile],
    options: &StudyOptions,
) -> StudyReport {
    let jobs = options.jobs;
    let plan = options.fault_plan.as_ref();
    let deadline = options.cell_deadline;
    let capabilities: Vec<bomblab_sa::Capabilities> = profiles
        .iter()
        .map(ToolProfile::static_capabilities)
        .collect();

    // Phase 1: per-case ground truth plus the execution-free static
    // analysis (CFG + VSA + lints) that feeds pruning hints and the
    // prediction column. Ground truth is the study's *oracle* and runs
    // unfaulted; the analyzer runs armed, and a contained analyzer crash
    // degrades the row (default hints, `E` predictions) without losing it.
    type GroundSlot = (
        GroundTruth,
        Result<bomblab_sa::Analysis, CrashDiag>,
        Option<obs::CellProfile>,
    );
    let grounds: Vec<GroundSlot> = parallel_map(
        jobs,
        cases.len(),
        |i| {
            let case = &cases[i];
            let t0 = std::time::Instant::now();
            // The observation window wraps the whole phase-1 unit under a
            // pseudo-profile name; it sits *outside* the containment
            // boundary so a contained analyzer crash still yields the
            // spans recorded up to the panic.
            let obs_token = options
                .observe
                .then(|| obs::arm(&case.subject.name, "oracle+static"));
            let ground = ground_truth(&case.subject, &case.trigger);
            let token = fault::arm(plan, deadline);
            let analysis = catch_unwind(AssertUnwindSafe(|| {
                bomblab_sa::analyze(&case.subject.image, case.subject.lib.as_ref())
            }));
            let containment = fault::disarm(token);
            let profile = obs_token.map(obs::disarm);
            let analysis = analysis.map_err(|payload| CrashDiag {
                message: fault::panic_message(&*payload),
                stage: "static analysis".to_string(),
                elapsed_ns: containment.elapsed.as_nanos() as u64,
            });
            match &analysis {
                Ok(a) => eprintln!(
                    "[study] {}: ground truth + static analysis in {:.1?} ({})",
                    case.subject.name,
                    t0.elapsed(),
                    a.summary()
                ),
                Err(diag) => eprintln!(
                    "[study] {}: static analysis crashed (contained): {}",
                    case.subject.name, diag.message
                ),
            }
            (ground, analysis, profile)
        },
        |i, message| {
            // Even ground truth died: keep the row with a default oracle.
            eprintln!(
                "[study] {}: phase-1 worker crashed (contained): {message}",
                cases[i].subject.name
            );
            (
                GroundTruth::default(),
                Err(CrashDiag {
                    message,
                    stage: "ground truth".to_string(),
                    elapsed_ns: 0,
                }),
                None,
            )
        },
    );

    // Scheduling costs must be read *before* `Journal::open`: a
    // non-resume open truncates the journal, history and all — and even a
    // foreign journal's wall clocks are fine scheduling hints (the reason
    // `load_costs` skips the fingerprint check a resume requires).
    let historical = options
        .checkpoint
        .as_ref()
        .map(|dir| checkpoint::load_costs(dir))
        .unwrap_or_default();

    // Cost-aware scheduling: claim cells longest-processing-time-first,
    // so the multi-millisecond tail (covert_syscall, crypto_*) starts
    // early instead of landing last on one worker while its siblings
    // idle. Cost is the journal's historical wall clock when available,
    // else a static-analysis estimate. The order shapes only the
    // *schedule* — results land by original index, so report bytes are
    // identical to the unscheduled fan-out at every `jobs` value.
    let n_cells = cases.len() * profiles.len();
    let mut sched_costed = 0u64;
    let mut sched_estimated = 0u64;
    let claim_order = if jobs > 1 && n_cells > 1 {
        let mut cost = Vec::with_capacity(n_cells);
        for k in 0..n_cells {
            let case = &cases[k / profiles.len()];
            let (col, profile) = (k % profiles.len(), &profiles[k % profiles.len()]);
            let key = (case.subject.name.clone(), profile.name.clone());
            match historical.get(&key) {
                Some(&wall_ns) => {
                    sched_costed += 1;
                    cost.push(wall_ns);
                }
                None => {
                    sched_estimated += 1;
                    cost.push(estimate_cell_cost(
                        &grounds[k / profiles.len()].1,
                        &capabilities[col],
                    ));
                }
            }
        }
        let mut order: Vec<usize> = (0..n_cells).collect();
        // Descending cost, dataset order on ties — deterministic for a
        // given journal + dataset, whatever the historical timings were.
        order.sort_by(|&a, &b| cost[b].cmp(&cost[a]).then(a.cmp(&b)));
        Some(order)
    } else {
        None
    };

    // One shared in-process solver cache for the whole study (all cells,
    // all workers). Read-through is gated per profile inside the engine.
    let shared_cache = options
        .shared_cache
        .then(bomblab_solver::ShardCache::shared);

    // Checkpoint journal: opened (and truncated or replayed) before the
    // matrix fans out. An unopenable journal degrades to a plain run —
    // durability is best-effort, never a new way for a study to die.
    let journal_state: Option<(Mutex<Journal>, HashMap<u64, CellRecord>)> =
        options.checkpoint.as_ref().and_then(|dir| {
            let fp = study_fingerprint(cases, profiles, options);
            match Journal::open(dir, fp, options.resume) {
                Ok((journal, completed)) => {
                    if !completed.is_empty() {
                        eprintln!(
                            "[study] resuming: {} of {} cells replay from the journal",
                            completed.len(),
                            cases.len() * profiles.len()
                        );
                    }
                    Some((Mutex::new(journal), completed))
                }
                Err(e) => {
                    eprintln!("[study] checkpoint journal unavailable ({e}); running without");
                    None
                }
            }
        });
    let (journal, completed) = match &journal_state {
        Some((j, c)) => (Some(j), Some(c)),
        None => (None, None),
    };
    let cells_replayed = AtomicU64::new(0);
    let checkpoint_io_errors = AtomicU64::new(0);

    // Phase 2: the cell matrix, one containment boundary per attempt.
    let cells = parallel_map_ordered(
        jobs,
        n_cells,
        claim_order,
        |k| {
            let (case, (ground, analysis, _)) =
                (&cases[k / profiles.len()], &grounds[k / profiles.len()]);
            let (col, profile) = (k % profiles.len(), &profiles[k % profiles.len()]);
            if let Some(rec) = completed.and_then(|c| c.get(&(k as u64))) {
                // The fingerprint already pins the matrix; the name
                // cross-check guards against an index-mapping bug ever
                // splicing a record into the wrong cell.
                if rec.bomb == case.subject.name && rec.profile == profile.name {
                    cells_replayed.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[study]   {} x {}: {} (replayed from checkpoint)",
                        case.subject.name, profile.name, rec.outcome
                    );
                    return replay_cell(case, profile, col, rec);
                }
            }
            let hints = analysis
                .as_ref()
                .map(|a| {
                    let h = StaticHints::from_analysis(a);
                    if profile.use_dataflow_hints {
                        h.with_dataflow(a)
                    } else {
                        h
                    }
                })
                .unwrap_or_default();
            let t1 = std::time::Instant::now();
            // The attempt loop: attempt 0 runs with the study's fault plan
            // armed; retries run *unfaulted* (the transient cause is gone
            // by definition) under an escalating 1x/2x/4x deadline, after
            // a deterministic exponential backoff. Two identical organic
            // panics quarantine the cell instead of burning the budget.
            let mut previous_crash: Option<String> = None;
            let mut retry_log: Vec<String> = Vec::new();
            let mut backoff_total_ns = 0u64;
            let mut attempt_no = 0u32;
            let mut cell = loop {
                let armed_plan = if attempt_no == 0 { plan } else { None };
                let attempt_deadline = deadline.map(|d| d * (1u32 << attempt_no.min(2)));
                // Observation window outside the containment boundary: a
                // contained panic still yields the spans recorded up to
                // it. Only the final attempt's window survives.
                let obs_token = options
                    .observe
                    .then(|| obs::arm(&case.subject.name, &profile.name));
                let token = fault::arm(armed_plan, attempt_deadline);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    Engine::new(profile.clone())
                        .with_static_hints(hints.clone())
                        .with_solver_cache_dir(options.solver_cache_dir.clone())
                        .with_shared_cache(shared_cache.clone())
                        .explore(&case.subject, ground)
                }));
                let containment = fault::disarm(token);
                let obs_profile = obs_token.map(obs::disarm);
                let mut cell = match result {
                    Ok(mut attempt) => {
                        attempt.evidence.injected_faults = containment.injected;
                        CellResult {
                            profile: profile.name.clone(),
                            outcome: attempt.outcome,
                            expected: case.paper_expected.and_then(|row| row.get(col).copied()),
                            wall_ns: t1.elapsed().as_nanos() as u64,
                            attempt,
                            obs: None,
                        }
                    }
                    Err(payload) => abnormal_cell(
                        case,
                        profile,
                        col,
                        CrashDiag {
                            message: fault::panic_message(&*payload),
                            stage: containment.stage.to_string(),
                            elapsed_ns: containment.elapsed.as_nanos() as u64,
                        },
                        Some(&containment),
                    ),
                };
                cell.obs = obs_profile;
                cell.attempt.evidence.fault_log = containment.fired;
                let failed = cell.attempt.evidence.crash.is_some()
                    || cell.attempt.evidence.injected_faults > 0;
                if !failed || attempt_no >= options.retries {
                    break cell;
                }
                let message = cell.attempt.evidence.crash.as_ref().map_or_else(
                    || "injected fault (no crash)".to_string(),
                    |c| c.message.clone(),
                );
                if failure_is_deterministic(previous_crash.as_deref(), &message) {
                    cell.attempt.evidence.quarantined = true;
                    eprintln!(
                        "[study]   {} x {}: quarantined after repeated failure `{message}`",
                        case.subject.name, profile.name
                    );
                    break cell;
                }
                retry_log.push(message.clone());
                previous_crash = Some(message);
                attempt_no += 1;
                let backoff = Duration::from_millis(10) * (1u32 << (attempt_no - 1).min(8));
                backoff_total_ns += backoff.as_nanos() as u64;
                eprintln!(
                    "[study]   {} x {}: transient failure; retry {attempt_no}/{} after {backoff:?}",
                    case.subject.name, profile.name, options.retries
                );
                std::thread::sleep(backoff);
            };
            cell.attempt.evidence.retries = attempt_no;
            cell.attempt.evidence.retry_backoff_ns = backoff_total_ns;
            cell.attempt.evidence.retry_log = retry_log;
            eprintln!(
                "[study]   {} x {}: {} in {:.1?} ({} rounds, {} queries{})",
                case.subject.name,
                profile.name,
                cell.outcome,
                t1.elapsed(),
                cell.attempt.evidence.rounds,
                cell.attempt.evidence.queries,
                if cell.attempt.evidence.injected_faults > 0 {
                    format!(
                        ", {} injected faults",
                        cell.attempt.evidence.injected_faults
                    )
                } else {
                    String::new()
                }
            );
            // Append the finished cell to the journal. The append runs in
            // its own armed window (chaos plans carry checkpoint fault
            // points) and its failure is a *study-level* counter, never
            // cell evidence: the cell's verdict is already decided, and a
            // failed append self-heals on the next successful rewrite.
            if let Some(j) = journal {
                let rec = cell_record(k as u64, &case.subject.name, &cell);
                let armed = plan.is_some().then(|| fault::arm(plan, None));
                let appended = catch_unwind(AssertUnwindSafe(|| {
                    j.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .append(&rec)
                }));
                if let Some(t) = armed {
                    let _ = fault::disarm(t);
                }
                match appended {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        checkpoint_io_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("[study] checkpoint append failed (self-healing): {e}");
                    }
                    Err(payload) => {
                        checkpoint_io_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "[study] checkpoint append panicked (contained): {}",
                            fault::panic_message(&*payload)
                        );
                    }
                }
            }
            cell
        },
        |k, message| {
            let (case, profile) = (&cases[k / profiles.len()], &profiles[k % profiles.len()]);
            abnormal_cell(
                case,
                profile,
                k % profiles.len(),
                CrashDiag {
                    message,
                    stage: "worker".to_string(),
                    elapsed_ns: 0,
                },
                None,
            )
        },
    );

    let mut cells = cells.into_iter();
    let rows = cases
        .iter()
        .zip(grounds)
        .map(|(case, (ground, analysis, analysis_obs))| {
            let (static_predictions, analysis_crash) = match analysis {
                Ok(a) => (
                    capabilities
                        .iter()
                        .map(|caps| bomblab_sa::predict(&a.facts, caps).into())
                        .collect(),
                    None,
                ),
                // No analysis to predict from: the static tool itself
                // died on this binary, which is exactly the paper's `E`.
                Err(diag) => (vec![Outcome::Abnormal; profiles.len()], Some(diag)),
            };
            RowResult {
                name: case.subject.name.clone(),
                category: case.category.clone(),
                cells: cells.by_ref().take(profiles.len()).collect(),
                ground,
                static_predictions,
                analysis_crash,
                analysis_obs,
            }
        })
        .collect();
    StudyReport {
        profiles: profiles.iter().map(|p| p.name.clone()).collect(),
        rows,
        stats: StudyStats {
            cells_replayed: cells_replayed.into_inner(),
            checkpoint_io_errors: checkpoint_io_errors.into_inner(),
            sched_costed,
            sched_estimated,
        },
    }
}

/// Static scheduling estimate for one cell, when the journal has no
/// history for it. The unit is fictional — only the *relative* order
/// matters (ties fall back to dataset order), so the weights just rank
/// how much solver work the predicted outcome implies: `Es2` cells grind
/// the conflict budget down (crypto functions, covert propagation — the
/// study's measured tail), predicted solves run the full concolic loop
/// to detonation, the other failure stages die progressively earlier.
fn estimate_cell_cost(
    analysis: &Result<bomblab_sa::Analysis, CrashDiag>,
    caps: &bomblab_sa::Capabilities,
) -> u64 {
    let Ok(a) = analysis else {
        // The analyzer itself died on this binary: the engine cells will
        // degrade quickly too.
        return 1;
    };
    let predicted: Outcome = bomblab_sa::predict(&a.facts, caps).into();
    match predicted {
        Outcome::Es2 => 6,
        Outcome::Solved | Outcome::Partial => 5,
        Outcome::Es3 => 4,
        Outcome::Es1 => 3,
        Outcome::Es0 => 2,
        Outcome::Abnormal => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::{failure_is_deterministic, parallel_map, parallel_map_ordered};
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn deadline_trips_are_always_transient() {
        // The two deadline messages are never deterministic, even when the
        // same message repeats: a slow cell deserves its escalated budget.
        for msg in [
            "cell wall-clock deadline exceeded",
            "injected stall exceeded the cell deadline",
        ] {
            assert!(!failure_is_deterministic(None, msg));
            assert!(!failure_is_deterministic(Some(msg), msg));
        }
    }

    #[test]
    fn a_repeated_organic_panic_is_deterministic() {
        let msg = "index out of bounds: the len is 3 but the index is 7";
        // First sighting: transient by presumption.
        assert!(!failure_is_deterministic(None, msg));
        // Same message twice: deterministic, quarantine.
        assert!(failure_is_deterministic(Some(msg), msg));
        // A different message resets the presumption.
        assert!(!failure_is_deterministic(Some("other panic"), msg));
    }

    #[test]
    fn parallel_map_preserves_order_at_any_job_count() {
        for jobs in [1, 2, 7] {
            let out = parallel_map(jobs, 10, |i| i * i, |i, _| i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_item_is_recovered_without_losing_its_neighbors() {
        for jobs in [1, 3] {
            let out = parallel_map(
                jobs,
                5,
                |i| {
                    assert!(i != 2, "boom at {i}");
                    format!("ok {i}")
                },
                |i, message| format!("recovered {i}: {message}"),
            );
            assert_eq!(out[0], "ok 0");
            assert_eq!(out[1], "ok 1");
            assert_eq!(out[2], "recovered 2: boom at 2");
            assert_eq!(out[3], "ok 3");
            assert_eq!(out[4], "ok 4");
        }
    }

    #[test]
    fn every_item_panicking_still_yields_a_full_result_vector() {
        let out: Vec<usize> = parallel_map(4, 8, |_| panic!("all dead"), |i, _| i + 100);
        assert_eq!(out, (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn the_claim_order_shapes_the_schedule_but_never_the_output() {
        let expected: Vec<usize> = (0..10).map(|i| i * i).collect();
        let orders: Vec<Vec<usize>> = vec![
            (0..10).rev().collect(),            // worst-first
            (0..10).collect(),                  // identity
            vec![5, 1, 9, 0, 7, 3, 8, 2, 6, 4], // arbitrary permutation
        ];
        for order in orders {
            for jobs in [1, 2, 7] {
                let out = parallel_map_ordered(jobs, 10, Some(order.clone()), |i| i * i, |i, _| i);
                assert_eq!(out, expected, "jobs={jobs} order={order:?}");
            }
        }
    }

    #[test]
    fn a_bogus_claim_order_falls_back_to_identity() {
        let expected: Vec<usize> = (0..5).map(|i| i + 1).collect();
        for bogus in [
            vec![0, 1, 2],          // too short: would drop items
            vec![0, 1, 2, 3, 3],    // duplicate: would run one twice
            vec![0, 1, 2, 3, 9],    // out of range: would index past n
            vec![0, 0, 1, 2, 3, 4], // too long
        ] {
            let out = parallel_map_ordered(2, 5, Some(bogus.clone()), |i| i + 1, |i, _| i);
            assert_eq!(out, expected, "bogus order {bogus:?} must not lose work");
        }
    }

    #[test]
    fn a_dead_worker_has_every_slot_backfilled() {
        // Kill a worker outright: item 2's `f` panics AND its first
        // `recover` panics too, which blows past the per-item containment
        // and takes the whole worker thread down. The scope join must not
        // re-raise that panic, and the post-join backfill must fill the
        // dead worker's slot (second `recover` call) plus any items the
        // worker never reached.
        for jobs in [1, 4] {
            let first_recover_panics = AtomicBool::new(true);
            let out: Vec<String> = parallel_map(
                jobs,
                6,
                |i| {
                    assert!(i != 2, "boom at {i}");
                    format!("ok {i}")
                },
                |i, message| {
                    if i == 2 && first_recover_panics.swap(false, Ordering::SeqCst) {
                        panic!("recover died too");
                    }
                    format!("recovered {i}: {message}")
                },
            );
            assert_eq!(out.len(), 6, "jobs={jobs}: no slot may be lost");
            for (i, v) in out.iter().enumerate() {
                if i == 2 {
                    assert!(v.starts_with("recovered 2"), "jobs={jobs}: got {v}");
                } else {
                    assert!(
                        *v == format!("ok {i}") || v.starts_with(&format!("recovered {i}")),
                        "jobs={jobs}: slot {i} holds {v}"
                    );
                }
            }
        }
    }
}
