//! The study runner: bombs × profiles → the paper's Table II.

use crate::engine::{ground_truth, Attempt, Engine, GroundTruth, StaticHints, Subject};
use crate::outcome::Outcome;
use crate::profile::ToolProfile;
use crate::world::WorldInput;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One dataset entry: a subject plus its known trigger and the outcome row
/// the paper reports (the oracle used for agreement scoring).
#[derive(Debug, Clone)]
pub struct StudyCase {
    /// The program under test.
    pub subject: Subject,
    /// Challenge category (Table II's left column).
    pub category: String,
    /// One-line description of the challenge instance.
    pub description: String,
    /// An input known to detonate the bomb (ground truth).
    pub trigger: WorldInput,
    /// The paper's Table-II row for [BAP, Triton, Angr, Angr-NoLib], if
    /// this case corresponds to a paper row.
    pub paper_expected: Option<[Outcome; 4]>,
}

/// Result of one (case, profile) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Tool name.
    pub profile: String,
    /// What our engine produced.
    pub outcome: Outcome,
    /// The paper's label for this cell, when known.
    pub expected: Option<Outcome>,
    /// Wall-clock nanoseconds the cell's exploration took.
    pub wall_ns: u64,
    /// The full attempt record.
    pub attempt: Attempt,
}

/// Result of one dataset row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Case name.
    pub name: String,
    /// Challenge category.
    pub category: String,
    /// Per-profile cells, in profile order.
    pub cells: Vec<CellResult>,
    /// Ground truth derived from the trigger.
    pub ground: GroundTruth,
    /// Per-profile outcome predicted by static analysis alone (no
    /// execution), in profile order.
    pub static_predictions: Vec<Outcome>,
}

/// The full study outcome.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Profile names, in column order.
    pub profiles: Vec<String>,
    /// Per-bomb rows.
    pub rows: Vec<RowResult>,
}

impl StudyReport {
    /// Number of solved cases per profile column.
    pub fn solved_counts(&self) -> Vec<usize> {
        (0..self.profiles.len())
            .map(|col| {
                self.rows
                    .iter()
                    .filter(|r| r.cells[col].outcome == Outcome::Solved)
                    .count()
            })
            .collect()
    }

    /// (matching cells, total comparable cells) against the paper oracle.
    pub fn agreement(&self) -> (usize, usize) {
        let mut hit = 0;
        let mut total = 0;
        for row in &self.rows {
            for cell in &row.cells {
                if let Some(expected) = cell.expected {
                    total += 1;
                    if expected == cell.outcome {
                        hit += 1;
                    }
                }
            }
        }
        (hit, total)
    }

    /// (matching cells, total cells) of static predictions against the
    /// dynamically observed outcomes.
    pub fn static_agreement(&self) -> (usize, usize) {
        let mut hit = 0;
        let mut total = 0;
        for row in &self.rows {
            for (cell, predicted) in row.cells.iter().zip(&row.static_predictions) {
                total += 1;
                if *predicted == cell.outcome {
                    hit += 1;
                }
            }
        }
        (hit, total)
    }

    /// Renders the Table-II-style result matrix as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "| Category | Case |");
        for p in &self.profiles {
            let _ = write!(out, " {p} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|---|");
        for _ in &self.profiles {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} | {} |", row.category, row.name);
            for cell in &row.cells {
                match cell.expected {
                    Some(e) if e != cell.outcome => {
                        let _ = write!(out, " **{}** (paper: {e}) |", cell.outcome);
                    }
                    _ => {
                        let _ = write!(out, " {} |", cell.outcome);
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "| | **solved** |");
        for c in self.solved_counts() {
            let _ = write!(out, " **{c}** |");
        }
        let _ = writeln!(out);
        let (hit, total) = self.agreement();
        if total > 0 {
            let _ = writeln!(
                out,
                "\nAgreement with the paper's Table II: {hit}/{total} cells."
            );
        }
        let (shit, stotal) = self.static_agreement();
        if stotal > 0 {
            let _ = writeln!(out, "\n## Static prediction vs dynamic outcome\n");
            let _ = write!(out, "| Case |");
            for p in &self.profiles {
                let _ = write!(out, " {p} |");
            }
            let _ = writeln!(out);
            let _ = write!(out, "|---|");
            for _ in &self.profiles {
                let _ = write!(out, "---|");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "| {} |", row.name);
                for (cell, predicted) in row.cells.iter().zip(&row.static_predictions) {
                    if *predicted == cell.outcome {
                        let _ = write!(out, " {predicted} |");
                    } else {
                        let _ = write!(out, " **{predicted}** (ran: {}) |", cell.outcome);
                    }
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(
                out,
                "\nStatic/dynamic agreement: {shit}/{stotal} cells \
                 (predictions made without executing the bombs)."
            );
        }
        out
    }
}

/// Maps `f` over `0..n`, fanning the indices across `jobs` scoped worker
/// threads. Workers pull indices from a shared atomic counter and collect
/// `(index, result)` pairs locally; the pairs are merged and sorted after
/// the scope joins, so the output order is `f(0), f(1), ..` regardless of
/// scheduling. `jobs <= 1` (or a single item) runs inline on this thread.
fn parallel_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, f) = (&next, &f);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("study worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Runs every case against every profile, logging progress to stderr.
/// Equivalent to [`run_study_jobs`] with `jobs = 1`.
pub fn run_study(cases: &[StudyCase], profiles: &[ToolProfile]) -> StudyReport {
    run_study_jobs(cases, profiles, 1)
}

/// Runs the study with up to `jobs` worker threads. Two fan-out phases:
/// ground truths (one unit per case), then the (case, profile) cell
/// matrix (one unit per cell). Rows and cells land in dataset order, so
/// the report is byte-for-byte identical for every `jobs` value.
pub fn run_study_jobs(cases: &[StudyCase], profiles: &[ToolProfile], jobs: usize) -> StudyReport {
    let capabilities: Vec<bomblab_sa::Capabilities> = profiles
        .iter()
        .map(ToolProfile::static_capabilities)
        .collect();

    // Phase 1: per-case ground truth plus the execution-free static
    // analysis (CFG + VSA + lints) that feeds pruning hints and the
    // prediction column.
    let grounds = parallel_map(jobs, cases.len(), |i| {
        let case = &cases[i];
        let t0 = std::time::Instant::now();
        let ground = ground_truth(&case.subject, &case.trigger);
        let analysis = bomblab_sa::analyze(&case.subject.image, case.subject.lib.as_ref());
        eprintln!(
            "[study] {}: ground truth + static analysis in {:.1?} ({})",
            case.subject.name,
            t0.elapsed(),
            analysis.summary()
        );
        (ground, analysis)
    });

    let cells = parallel_map(jobs, cases.len() * profiles.len(), |k| {
        let (case, (ground, analysis)) = (&cases[k / profiles.len()], &grounds[k / profiles.len()]);
        let (col, profile) = (k % profiles.len(), &profiles[k % profiles.len()]);
        let t1 = std::time::Instant::now();
        let engine =
            Engine::new(profile.clone()).with_static_hints(StaticHints::from_analysis(analysis));
        let attempt = engine.explore(&case.subject, ground);
        eprintln!(
            "[study]   {} x {}: {} in {:.1?} ({} rounds, {} queries)",
            case.subject.name,
            profile.name,
            attempt.outcome,
            t1.elapsed(),
            attempt.evidence.rounds,
            attempt.evidence.queries
        );
        CellResult {
            profile: profile.name.clone(),
            outcome: attempt.outcome,
            expected: case.paper_expected.and_then(|row| row.get(col).copied()),
            wall_ns: t1.elapsed().as_nanos() as u64,
            attempt,
        }
    });

    let mut cells = cells.into_iter();
    let rows = cases
        .iter()
        .zip(grounds)
        .map(|(case, (ground, analysis))| RowResult {
            name: case.subject.name.clone(),
            category: case.category.clone(),
            cells: cells.by_ref().take(profiles.len()).collect(),
            ground,
            static_predictions: capabilities
                .iter()
                .map(|caps| bomblab_sa::predict(&analysis.facts, caps).into())
                .collect(),
        })
        .collect();
    StudyReport {
        profiles: profiles.iter().map(|p| p.name.clone()).collect(),
        rows,
    }
}
