//! Chaos harness: randomized fault-injection sweeps over the study runner.
//!
//! Each sweep draws a deterministic [`fault::FaultPlan`] from a seed, runs
//! the full bombs × profiles study with the plan armed, and checks the
//! *containment invariant*: every injected fault must surface as a
//! well-formed cell in a complete report — the paper's `E` (Abnormal) or
//! `P` (Partial) label — never as a lost cell or a process abort.
//!
//! The harness is both a library API ([`chaos_sweep`]) used by the
//! integration tests and the backing for the `bomblab chaos` subcommand.

use crate::outcome::Outcome;
use crate::profile::ToolProfile;
use crate::study::{run_study_with, StudyCase, StudyOptions, StudyReport};
use bomblab_fault as fault;
use std::path::PathBuf;
use std::time::Duration;

/// Parameters for a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base seed; sweep `s` uses `seed + s`.
    pub seed: u64,
    /// Number of independent sweeps (each with its own random plan).
    pub sweeps: u32,
    /// Faults drawn per plan.
    pub faults: u32,
    /// Extra faults drawn against the durability I/O sites (checkpoint
    /// writes/renames, cache segment loads) from an independent stream,
    /// so enabling them never perturbs the engine-site draw.
    pub io_faults: u32,
    /// Retry budget handed to the study runner (transient failures only).
    pub retries: u32,
    /// Worker threads handed to the study runner.
    pub jobs: usize,
    /// Per-cell wall-clock deadline (stalled cells become `E`).
    pub cell_deadline: Option<Duration>,
    /// Collect per-cell observation profiles (for `chaos --trace`).
    pub observe: bool,
    /// Checkpoint journal directory (gives checkpoint fault sites a
    /// surface to fire on).
    pub checkpoint: Option<PathBuf>,
    /// Persistent solver-cache directory (gives cache-load fault sites a
    /// surface to fire on).
    pub solver_cache_dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            sweeps: 1,
            faults: 3,
            io_faults: 0,
            retries: 0,
            jobs: 1,
            cell_deadline: Some(Duration::from_secs(300)),
            observe: false,
            checkpoint: None,
            solver_cache_dir: None,
        }
    }
}

/// The result of one sweep: the plan that was armed, the report it
/// produced, and any containment-invariant violations found in it.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The seed this sweep's plan was drawn from.
    pub seed: u64,
    /// The armed fault plan.
    pub plan: fault::FaultPlan,
    /// The completed study report (always full-matrix).
    pub report: StudyReport,
    /// Cells that absorbed at least one injected fault, plus rows whose
    /// static analysis crashed.
    pub injected_cells: usize,
    /// Human-readable invariant violations; empty means the sweep passed.
    pub violations: Vec<String>,
}

/// Runs `config.sweeps` randomized fault-injection sweeps and checks the
/// containment invariant on each resulting report.
pub fn chaos_sweep(
    cases: &[StudyCase],
    profiles: &[ToolProfile],
    config: &ChaosConfig,
) -> Vec<SweepOutcome> {
    (0..u64::from(config.sweeps.max(1)))
        .map(|s| {
            let seed = config.seed.wrapping_add(s);
            let mut plan = fault::FaultPlan::random(seed, config.faults as usize);
            if config.io_faults > 0 {
                let io = fault::FaultPlan::random_io(seed, config.io_faults as usize);
                plan.faults.extend(io.faults);
            }
            let report = run_study_with(
                cases,
                profiles,
                &StudyOptions {
                    jobs: config.jobs,
                    fault_plan: Some(plan.clone()),
                    cell_deadline: config.cell_deadline,
                    observe: config.observe,
                    retries: config.retries,
                    checkpoint: config.checkpoint.clone(),
                    resume: false,
                    solver_cache_dir: config.solver_cache_dir.clone(),
                    shared_cache: true,
                },
            );
            let violations = check_containment(cases, profiles, &report);
            let injected_cells = report
                .rows
                .iter()
                .flat_map(|row| &row.cells)
                .filter(|cell| {
                    cell.attempt.evidence.injected_faults > 0
                        || cell.attempt.evidence.crash.is_some()
                })
                .count()
                + report
                    .rows
                    .iter()
                    .filter(|row| row.analysis_crash.is_some())
                    .count();
            SweepOutcome {
                seed,
                plan,
                report,
                injected_cells,
                violations,
            }
        })
        .collect()
}

/// Checks the containment invariant over a finished report. Returns one
/// message per violation; an empty vector means the report is well formed.
///
/// The invariant, in full:
///
/// 1. the matrix is complete: one row per case in dataset order, one cell
///    per profile in profile order, one static prediction per profile;
/// 2. any cell that absorbed an injected fault or recorded a crash is
///    labeled `E` (Abnormal) or `P` (Partial) — a fault never launders
///    into a success label;
/// 3. every recorded crash carries a non-empty diagnostic message;
/// 4. `Solved` cells are clean: a solving input present, zero injected
///    faults, no crash record.
pub fn check_containment(
    cases: &[StudyCase],
    profiles: &[ToolProfile],
    report: &StudyReport,
) -> Vec<String> {
    let mut violations = Vec::new();
    let expected_profiles: Vec<&str> = profiles.iter().map(|p| p.name.as_str()).collect();
    if report.profiles != expected_profiles {
        violations.push(format!(
            "profile header mismatch: expected {expected_profiles:?}, got {:?}",
            report.profiles
        ));
    }
    if report.rows.len() != cases.len() {
        violations.push(format!(
            "row count mismatch: expected {} rows, got {}",
            cases.len(),
            report.rows.len()
        ));
    }
    for (case, row) in cases.iter().zip(&report.rows) {
        if row.name != case.subject.name {
            violations.push(format!(
                "row order mismatch: expected {}, got {}",
                case.subject.name, row.name
            ));
        }
        if row.cells.len() != profiles.len() {
            violations.push(format!(
                "{}: expected {} cells, got {}",
                row.name,
                profiles.len(),
                row.cells.len()
            ));
        }
        if row.static_predictions.len() != profiles.len() {
            violations.push(format!(
                "{}: expected {} static predictions, got {}",
                row.name,
                profiles.len(),
                row.static_predictions.len()
            ));
        }
        if let Some(diag) = &row.analysis_crash {
            if diag.message.is_empty() {
                violations.push(format!("{}: analysis crash with empty message", row.name));
            }
        }
        for (profile, cell) in profiles.iter().zip(&row.cells) {
            let at = format!("{} x {}", row.name, profile.name);
            if cell.profile != profile.name {
                violations.push(format!(
                    "{at}: cell column mismatch (labeled {})",
                    cell.profile
                ));
            }
            let evidence = &cell.attempt.evidence;
            let faulted = evidence.injected_faults > 0 || evidence.crash.is_some();
            if faulted && !matches!(cell.outcome, Outcome::Abnormal | Outcome::Partial) {
                violations.push(format!(
                    "{at}: absorbed {} injected faults but reported {}",
                    evidence.injected_faults, cell.outcome
                ));
            }
            if let Some(diag) = &evidence.crash {
                if diag.message.is_empty() {
                    violations.push(format!("{at}: crash record with empty message"));
                }
            }
            if cell.outcome == Outcome::Solved {
                if cell.attempt.solved_input.is_none() {
                    violations.push(format!("{at}: Solved without a solving input"));
                }
                if faulted {
                    violations.push(format!("{at}: Solved despite injected faults"));
                }
            }
        }
    }
    violations
}
